#include "runtime/scheduler.h"

#include "common/string_util.h"

namespace msql {

QueryScheduler::QueryScheduler(SchedulerOptions options)
    : options_(options), pool_(options.num_threads) {}

QueryScheduler::~QueryScheduler() {
  Drain();
  pool_.Shutdown();
}

Result<QueryScheduler::QueryFuture> QueryScheduler::Submit(
    const SessionPtr& session, std::string sql) {
  // Optimistically reserve the global and per-session slots; undo on
  // rejection. fetch_add-then-check keeps both caps exact under races.
  const size_t pending = pending_.fetch_add(1, std::memory_order_acq_rel);
  if (pending >= options_.max_pending) {
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    return Status(ErrorCode::kResourceExhausted,
                  StrCat("scheduler admission queue full (max_pending=",
                         options_.max_pending, ")"));
  }
  const int inflight =
      session->inflight_.fetch_add(1, std::memory_order_acq_rel);
  if (inflight >= options_.max_inflight_per_session) {
    session->inflight_.fetch_sub(1, std::memory_order_acq_rel);
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    return Status(
        ErrorCode::kResourceExhausted,
        StrCat("session ", session->id(), " at its in-flight limit (",
               options_.max_inflight_per_session, ")"));
  }

  auto task = std::make_shared<std::packaged_task<Result<ResultSet>()>>(
      [session, sql = std::move(sql)] { return session->Query(sql); });
  QueryFuture future = task->get_future();

  const bool submitted = pool_.Submit([this, session, task] {
    (*task)();
    session->inflight_.fetch_sub(1, std::memory_order_acq_rel);
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
      pending_.fetch_sub(1, std::memory_order_acq_rel);
    }
    drain_cv_.notify_all();
  });
  if (!submitted) {
    session->inflight_.fetch_sub(1, std::memory_order_acq_rel);
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    return Status(ErrorCode::kCancelled, "scheduler is shut down");
  }
  return future;
}

void QueryScheduler::Drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace msql

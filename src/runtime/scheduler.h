#ifndef MSQL_RUNTIME_SCHEDULER_H_
#define MSQL_RUNTIME_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <string>

#include "engine/engine.h"
#include "runtime/session.h"
#include "runtime/thread_pool.h"

namespace msql {

struct SchedulerOptions {
  // Worker threads executing admitted queries.
  int num_threads = 4;
  // Admitted-but-unfinished statement cap across all sessions; submissions
  // beyond it are rejected with kResourceExhausted (load shedding, not
  // unbounded queueing).
  size_t max_pending = 256;
  // Per-session concurrent statement cap.
  int max_inflight_per_session = 8;
};

// Admission-controlled concurrent query execution: a fixed worker pool fed
// by Submit(), which either admits a statement (returning a future for its
// result) or rejects it immediately with kResourceExhausted when the global
// pending cap or the session's in-flight cap is hit. Cancellation composes:
// Session::Cancel() and Engine::CancelAll() both reach admitted queries
// through the per-query tokens / engine cancel generation.
class QueryScheduler {
 public:
  using QueryFuture = std::future<Result<ResultSet>>;

  explicit QueryScheduler(SchedulerOptions options = {});
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  // Admits `sql` for execution on `session`'s behalf. On admission the
  // returned future eventually holds the statement's result (possibly an
  // error status); on rejection the Result carries kResourceExhausted.
  Result<QueryFuture> Submit(const SessionPtr& session, std::string sql);

  // Blocks until every admitted statement has finished.
  void Drain();

  size_t pending() const { return pending_.load(std::memory_order_acquire); }
  const SchedulerOptions& options() const { return options_; }

 private:
  // Scheduler metrics live in the engine's registry (one scheduler may in
  // principle serve sessions of several engines; instruments are re-resolved
  // when the engine changes, cached otherwise).
  struct SchedMetrics {
    obs::Counter* rejections = nullptr;
    obs::Histogram* queue_wait_ms = nullptr;
    obs::Histogram* queue_depth = nullptr;
  };
  SchedMetrics MetricsFor(Engine& engine);

  SchedulerOptions options_;
  std::atomic<size_t> pending_{0};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;

  std::mutex metrics_mu_;
  Engine* metrics_engine_ = nullptr;
  SchedMetrics cached_metrics_;

  ThreadPool pool_;  // last member: workers stop before the rest dies
};

}  // namespace msql

#endif  // MSQL_RUNTIME_SCHEDULER_H_

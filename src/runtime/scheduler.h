#ifndef MSQL_RUNTIME_SCHEDULER_H_
#define MSQL_RUNTIME_SCHEDULER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>

#include "engine/engine.h"
#include "runtime/rate_limiter.h"
#include "runtime/retry.h"
#include "runtime/session.h"
#include "runtime/thread_pool.h"

namespace msql {

struct SchedulerOptions {
  // Worker threads executing admitted queries.
  int num_threads = 4;
  // Admitted-but-unfinished statement cap across all sessions; submissions
  // beyond it wait (bounded) for a slot, then are shed with
  // kResourceExhausted (load shedding, not unbounded queueing). 0 is a
  // zero-capacity queue that sheds every submission — tests use it to
  // force the rejection path deterministically.
  size_t max_pending = 256;
  // Per-session concurrent statement cap.
  int max_inflight_per_session = 8;
  // Bounded-wait admission (docs/CONCURRENCY.md): how long a submission
  // may wait for rate-limit tokens and a pending slot before being shed.
  // The wait never exceeds the query's own deadline (session timeout_ms,
  // measured from submission). 0 restores instant-reject admission — the
  // ablation baseline bench_overload compares against.
  int64_t max_admission_wait_ms = 100;
  // Global admission token bucket across all sessions, applied before the
  // per-session bucket (EngineOptions::admission_rate_limit_qps). 0 =
  // unlimited.
  double global_rate_limit_qps = 0.0;
  int64_t global_rate_limit_burst = 16;
};

// Admission-controlled concurrent query execution: a fixed worker pool fed
// by Submit(). Admission runs a small state machine per submission
// (docs/CONCURRENCY.md): rate-limit gate (global bucket, then the
// session's) -> bounded wait for a pending + per-session slot -> enqueue.
// A submission that cannot clear a stage within its wait budget — the
// smaller of max_admission_wait_ms and the query's own deadline — is shed
// with kResourceExhausted (or kDeadlineExceeded when its deadline expired
// while waiting). Cancellation composes at every stage: Session::Cancel()
// and Engine::CancelAll() reach waiting and queued-but-unstarted
// submissions, which unwind with kCancelled without executing, as well as
// admitted queries through the per-query tokens / engine cancel
// generation. When the session sets timeout_ms, the absolute deadline is
// stamped at submission and propagated into the query guard, so queue wait
// and execution charge one budget.
class QueryScheduler {
 public:
  using QueryFuture = std::future<Result<ResultSet>>;

  explicit QueryScheduler(SchedulerOptions options = {});
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  // Admits `sql` for execution on `session`'s behalf. On admission the
  // returned future eventually holds the statement's result (possibly an
  // error status); on shed the Result carries kResourceExhausted /
  // kDeadlineExceeded, on cancellation during the wait kCancelled.
  Result<QueryFuture> Submit(const SessionPtr& session, std::string sql);

  // As Submit, but for an already-prepared plan with bound parameter
  // values (Session::QueryPrepared under full admission control). The
  // msqld server routes Execute frames through this so prepared traffic
  // obeys the same rate limits, slot caps and deadlines as text queries.
  Result<QueryFuture> SubmitPrepared(const SessionPtr& session,
                                     PreparedPlanPtr prepared, Row params);

  // Submit + wait, retrying retryable failures (Status::IsRetryable —
  // admission sheds and other transient pressure) with capped exponential
  // backoff and deterministic seeded jitter (runtime/retry.h). Each
  // attempt gets a fresh deadline from the session's timeout_ms. Returns
  // the first success or the last attempt's failure.
  Result<ResultSet> SubmitWithRetry(const SessionPtr& session,
                                    std::string sql,
                                    const RetryPolicy& policy);

  // Blocks until every admitted statement has finished.
  void Drain();

  size_t pending() const { return pending_.load(std::memory_order_acquire); }
  const SchedulerOptions& options() const { return options_; }

 private:
  // The admitted statement's execution body, invoked on a worker thread
  // with the final ScheduledRun (queue wait filled in). Both Submit
  // variants reduce to SubmitRunner with a different runner.
  using Runner = std::function<Result<ResultSet>(const ScheduledRun&)>;
  Result<QueryFuture> SubmitRunner(const SessionPtr& session, Runner runner);

  // Scheduler metrics live in the engine's registry (one scheduler may in
  // principle serve sessions of several engines; instruments are re-resolved
  // when the engine changes, cached otherwise).
  struct SchedMetrics {
    obs::Counter* rejections = nullptr;
    obs::Counter* rate_limited = nullptr;
    obs::Counter* retries = nullptr;
    obs::Histogram* queue_wait_ms = nullptr;
    obs::Histogram* queue_depth = nullptr;
    obs::Histogram* admission_wait_seconds = nullptr;
  };
  SchedMetrics MetricsFor(Engine& engine);

  // Admission stages; both poll `token` and the engine cancel generation
  // (snapshot `generation`) so cancellation is honored while waiting, and
  // both give up at `wait_deadline`. `deadline` (valid when has_deadline)
  // distinguishes a shed (kResourceExhausted) from an expired query
  // deadline (kDeadlineExceeded).
  Status WaitForRateTokens(const SessionPtr& session,
                           const CancelTokenPtr& token, uint64_t generation,
                           std::chrono::steady_clock::time_point wait_deadline,
                           bool has_deadline,
                           std::chrono::steady_clock::time_point deadline,
                           const SchedMetrics& metrics);
  Status WaitForSlots(const SessionPtr& session, const CancelTokenPtr& token,
                      uint64_t generation,
                      std::chrono::steady_clock::time_point wait_deadline,
                      bool has_deadline,
                      std::chrono::steady_clock::time_point deadline,
                      const SchedMetrics& metrics);

  SchedulerOptions options_;
  RateLimiter global_limiter_;
  std::atomic<size_t> pending_{0};

  // One mutex covers slot reservation, completion accounting and Drain();
  // admission waiters poll in ~1ms slices so cancellation and deadlines
  // are honored even if a notify is missed.
  std::mutex admit_mu_;
  std::condition_variable admit_cv_;
  std::condition_variable drain_cv_;

  std::mutex metrics_mu_;
  Engine* metrics_engine_ = nullptr;
  SchedMetrics cached_metrics_;

  ThreadPool pool_;  // last member: workers stop before the rest dies
};

}  // namespace msql

#endif  // MSQL_RUNTIME_SCHEDULER_H_

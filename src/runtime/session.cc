#include "runtime/session.h"

#include <algorithm>

namespace msql {

Session::~Session() { engine_->NoteSessionDestroyed(user_); }

CancelTokenPtr Session::AcquireToken() {
  auto token = std::make_shared<CancelToken>();
  std::lock_guard<std::mutex> lock(tokens_mu_);
  active_tokens_.push_back(token);
  return token;
}

QueryContext Session::MakeContext(CancelTokenPtr* token_out) {
  CancelTokenPtr token = AcquireToken();
  *token_out = token;
  QueryContext ctx;
  ctx.options = options_;
  ctx.user = user_;
  ctx.cancel = std::move(token);
  ctx.session_id = id_;
  ctx.peer = peer_;
  ctx.trace_id = trace_id_;
  return ctx;
}

void Session::ReleaseToken(const CancelTokenPtr& token) {
  std::lock_guard<std::mutex> lock(tokens_mu_);
  active_tokens_.erase(
      std::remove(active_tokens_.begin(), active_tokens_.end(), token),
      active_tokens_.end());
}

Result<ResultSet> Session::Query(const std::string& sql) {
  CancelTokenPtr token;
  QueryContext ctx = MakeContext(&token);
  Result<ResultSet> result = engine_->QueryWith(sql, ctx);
  ReleaseToken(token);
  return result;
}

QueryContext Session::ScheduledContext(const ScheduledRun& run) const {
  QueryContext ctx;
  ctx.options = options_;
  ctx.user = user_;
  ctx.cancel = run.token;  // registered by the scheduler at submission
  ctx.session_id = id_;
  ctx.peer = peer_;
  ctx.trace_id = trace_id_;
  ctx.queue_wait_us = run.queue_wait_us;
  ctx.admission_wait_us = run.admission_wait_us;
  ctx.has_deadline = run.has_deadline;
  ctx.deadline = run.deadline;
  return ctx;
}

Result<ResultSet> Session::QueryScheduled(const std::string& sql,
                                          const ScheduledRun& run) {
  Result<ResultSet> result = engine_->QueryWith(sql, ScheduledContext(run));
  ReleaseToken(run.token);
  return result;
}

Result<ResultSet> Session::QueryPreparedScheduled(
    const PreparedPlanPtr& prepared, const Row& params,
    const ScheduledRun& run) {
  Result<ResultSet> result =
      engine_->QueryPlanned(prepared, params, ScheduledContext(run));
  ReleaseToken(run.token);
  return result;
}

Result<PreparedPlanPtr> Session::Prepare(const std::string& sql,
                                         std::vector<TypeKind> param_types) {
  CancelTokenPtr token;
  QueryContext ctx = MakeContext(&token);
  Result<PreparedPlanPtr> result =
      engine_->PrepareSelect(sql, std::move(param_types), ctx);
  ReleaseToken(token);
  return result;
}

Result<ResultSet> Session::QueryPrepared(const PreparedPlanPtr& prepared,
                                         const Row& params) {
  CancelTokenPtr token;
  QueryContext ctx = MakeContext(&token);
  Result<ResultSet> result = engine_->QueryPlanned(prepared, params, ctx);
  ReleaseToken(token);
  return result;
}

Status Session::Execute(const std::string& sql) {
  CancelTokenPtr token;
  QueryContext ctx = MakeContext(&token);
  Status status = engine_->ExecuteWith(sql, ctx);
  ReleaseToken(token);
  return status;
}

void Session::Cancel() {
  std::lock_guard<std::mutex> lock(tokens_mu_);
  for (const CancelTokenPtr& token : active_tokens_) token->Cancel();
}

}  // namespace msql

#include "runtime/session.h"

#include <algorithm>

namespace msql {

QueryContext Session::MakeContext(CancelTokenPtr* token_out) {
  auto token = std::make_shared<CancelToken>();
  {
    std::lock_guard<std::mutex> lock(tokens_mu_);
    active_tokens_.push_back(token);
  }
  *token_out = token;
  return QueryContext{options_, user_, std::move(token)};
}

void Session::ReleaseToken(const CancelTokenPtr& token) {
  std::lock_guard<std::mutex> lock(tokens_mu_);
  active_tokens_.erase(
      std::remove(active_tokens_.begin(), active_tokens_.end(), token),
      active_tokens_.end());
}

Result<ResultSet> Session::Query(const std::string& sql) {
  CancelTokenPtr token;
  QueryContext ctx = MakeContext(&token);
  Result<ResultSet> result = engine_->QueryWith(sql, ctx);
  ReleaseToken(token);
  return result;
}

Status Session::Execute(const std::string& sql) {
  CancelTokenPtr token;
  QueryContext ctx = MakeContext(&token);
  Status status = engine_->ExecuteWith(sql, ctx);
  ReleaseToken(token);
  return status;
}

void Session::Cancel() {
  std::lock_guard<std::mutex> lock(tokens_mu_);
  for (const CancelTokenPtr& token : active_tokens_) token->Cancel();
}

}  // namespace msql

#ifndef MSQL_RUNTIME_SESSION_H_
#define MSQL_RUNTIME_SESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/engine.h"

namespace msql {

// One client's connection to an Engine: an options snapshot, a user, and a
// cancellation scope. Created with Engine::CreateSession(). Many sessions
// may issue queries concurrently (each Session::Query call is safe against
// every other session and against engine-level DDL/DML); a single session
// may also run several queries at once through QueryScheduler.
//
// `options()` / `SetUser` configure this session only, and — like their
// engine-level counterparts — must not be called while this session has a
// query in flight.
class Session {
 public:
  // Session lifetime is tracked by the engine (msql_sessions_active).
  ~Session();

  // Runs one statement as this session.
  Result<ResultSet> Query(const std::string& sql);

  // Runs one or more ';'-separated statements, discarding row results.
  Status Execute(const std::string& sql);

  // Cancels every statement currently executing on this session (from any
  // thread). Statements started after the call are unaffected.
  void Cancel();

  EngineOptions& options() { return options_; }
  void SetUser(std::string user) { user_ = std::move(user); }
  const std::string& user() const { return user_; }
  uint64_t id() const { return id_; }
  Engine& engine() { return *engine_; }

  // Queries currently executing on this session (scheduler admission).
  int inflight() const { return inflight_.load(std::memory_order_acquire); }

 private:
  friend class Engine;
  friend class QueryScheduler;

  Session(Engine* engine, uint64_t id, EngineOptions options,
          std::string user)
      : engine_(engine),
        id_(id),
        options_(std::move(options)),
        user_(std::move(user)) {}

  // Builds the per-query context with a fresh cancel token, registered so
  // Cancel() can reach it.
  QueryContext MakeContext(CancelTokenPtr* token_out);
  void ReleaseToken(const CancelTokenPtr& token);

  // Query() as dispatched by QueryScheduler, which measured how long the
  // statement sat in the admission queue; the wait lands in the query's
  // trace as a queue-wait span.
  Result<ResultSet> QueryScheduled(const std::string& sql,
                                   int64_t queue_wait_us);

  Engine* engine_;
  uint64_t id_;
  EngineOptions options_;
  std::string user_;

  std::mutex tokens_mu_;
  std::vector<CancelTokenPtr> active_tokens_;

  std::atomic<int> inflight_{0};
};

}  // namespace msql

#endif  // MSQL_RUNTIME_SESSION_H_

#ifndef MSQL_RUNTIME_SESSION_H_
#define MSQL_RUNTIME_SESSION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "runtime/rate_limiter.h"

namespace msql {

// Everything the scheduler hands a session about one admitted statement:
// how long admission and queueing took (for the trace), the cancel token it
// registered at submission, and the absolute deadline stamped when the
// statement was submitted (docs/CONCURRENCY.md).
struct ScheduledRun {
  int64_t queue_wait_us = 0;      // worker-pickup latency after admission
  int64_t admission_wait_us = 0;  // bounded-wait admission latency
  CancelTokenPtr token;           // registered with the session at submit
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
};

// One client's connection to an Engine: an options snapshot, a user, and a
// cancellation scope. Created with Engine::CreateSession(). Many sessions
// may issue queries concurrently (each Session::Query call is safe against
// every other session and against engine-level DDL/DML); a single session
// may also run several queries at once through QueryScheduler.
//
// `options()` / `SetUser` configure this session only, and — like their
// engine-level counterparts — must not be called while this session has a
// query in flight. The admission rate limit
// (EngineOptions::admission_rate_limit_qps) is the exception: it is
// snapshotted into the session's token bucket at CreateSession, so set it
// on the engine's options before creating the session.
class Session {
 public:
  // Session lifetime is tracked by the engine (msql_sessions_active).
  ~Session();

  // Runs one statement as this session.
  Result<ResultSet> Query(const std::string& sql);

  // Runs one or more ';'-separated statements, discarding row results.
  Status Execute(const std::string& sql);

  // Prepares a single SELECT with declared positional parameter types
  // (Engine::PrepareSelect as this session's user; published to the
  // engine's plan cache when enable_plan_cache is set).
  Result<PreparedPlanPtr> Prepare(const std::string& sql,
                                  std::vector<TypeKind> param_types);

  // Executes a prepared plan with `params` bound to its `?` placeholders.
  Result<ResultSet> QueryPrepared(const PreparedPlanPtr& prepared,
                                  const Row& params);

  // Cancels every statement currently executing on this session (from any
  // thread) — including statements still waiting in scheduler admission,
  // which unwind with kCancelled without executing. Statements started
  // after the call are unaffected.
  void Cancel();

  EngineOptions& options() { return options_; }
  void SetUser(std::string user) { user_ = std::move(user); }
  const std::string& user() const { return user_; }
  uint64_t id() const { return id_; }
  Engine& engine() { return *engine_; }

  // Connection identity ("ip:port#connid"), set once by the server after
  // Hello; copied onto every statement's trace. Same single-threaded
  // contract as options()/SetUser.
  void SetPeer(std::string peer) { peer_ = std::move(peer); }
  const std::string& peer() const { return peer_; }

  // Client-supplied correlation id for subsequent statements (wire trace
  // context); the server sets it before a traced statement and clears it
  // after. Same single-threaded contract as options()/SetUser.
  void SetTraceId(std::string id) { trace_id_ = std::move(id); }
  const std::string& trace_id() const { return trace_id_; }

  // Queries currently executing on this session (scheduler admission).
  int inflight() const { return inflight_.load(std::memory_order_acquire); }

 private:
  friend class Engine;
  friend class QueryScheduler;

  Session(Engine* engine, uint64_t id, EngineOptions options,
          std::string user)
      : engine_(engine),
        id_(id),
        options_(std::move(options)),
        user_(std::move(user)) {
    rate_limiter_.Configure(options_.admission_rate_limit_qps,
                            options_.admission_rate_limit_burst);
  }

  // Builds the per-query context with a fresh cancel token, registered so
  // Cancel() can reach it.
  QueryContext MakeContext(CancelTokenPtr* token_out);

  // Creates and registers a token without building a context yet: the
  // scheduler acquires the token at submission time so Cancel() reaches
  // statements still waiting for admission.
  CancelTokenPtr AcquireToken();
  void ReleaseToken(const CancelTokenPtr& token);

  // Query() as dispatched by QueryScheduler: runs under the already
  // registered token and carries the admission/queue waits (traced as
  // spans) and the submission-time deadline into the query context.
  Result<ResultSet> QueryScheduled(const std::string& sql,
                                   const ScheduledRun& run);

  // QueryPrepared() as dispatched by QueryScheduler::SubmitPrepared.
  Result<ResultSet> QueryPreparedScheduled(const PreparedPlanPtr& prepared,
                                           const Row& params,
                                           const ScheduledRun& run);

  // Shared context assembly for the two scheduled variants.
  QueryContext ScheduledContext(const ScheduledRun& run) const;

  Engine* engine_;
  uint64_t id_;
  EngineOptions options_;
  std::string user_;
  std::string peer_;
  std::string trace_id_;

  // Admission token bucket; disabled unless admission_rate_limit_qps > 0.
  RateLimiter rate_limiter_;

  std::mutex tokens_mu_;
  std::vector<CancelTokenPtr> active_tokens_;

  std::atomic<int> inflight_{0};
};

}  // namespace msql

#endif  // MSQL_RUNTIME_SESSION_H_

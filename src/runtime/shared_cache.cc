#include "runtime/shared_cache.h"

namespace msql {

bool SharedMeasureCache::Lookup(const std::string& key, Value* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++counters_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++counters_.hits;
  *out = it->second->value;
  return true;
}

void SharedMeasureCache::Insert(const std::string& key, const Value& value,
                                uint64_t generation) {
  const uint64_t cost = ApproxEntryBytes(key, value);
  std::lock_guard<std::mutex> lock(mu_);
  if (generation < min_generation_ || cost > max_bytes_) {
    ++counters_.rejected;
    return;
  }
  auto it = index_.find(key);
  if (it != index_.end()) RemoveLocked(it->second);
  lru_.push_front(Entry{key, value, nullptr, generation, cost});
  index_.emplace(key, lru_.begin());
  bytes_ += cost;
  ++counters_.insertions;
  EvictToBudgetLocked();
}

bool SharedMeasureCache::LookupObject(const std::string& key,
                                      std::shared_ptr<const void>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end() || it->second->object == nullptr) {
    ++counters_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++counters_.hits;
  *out = it->second->object;
  return true;
}

void SharedMeasureCache::InsertObject(const std::string& key,
                                      std::shared_ptr<const void> object,
                                      uint64_t bytes, uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  if (generation < min_generation_ || bytes > max_bytes_) {
    ++counters_.rejected;
    return;
  }
  auto it = index_.find(key);
  if (it != index_.end()) RemoveLocked(it->second);
  lru_.push_front(Entry{key, Value(), std::move(object), generation, bytes});
  index_.emplace(key, lru_.begin());
  bytes_ += bytes;
  ++counters_.insertions;
  EvictToBudgetLocked();
}

void SharedMeasureCache::InvalidateOlderThan(uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  if (generation > min_generation_) {
    min_generation_ = generation;
    ++counters_.invalidations;
  }
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->generation < min_generation_) {
      index_.erase(it->key);
      bytes_ -= it->bytes;
      it = lru_.erase(it);
      ++counters_.evictions;
    } else {
      ++it;
    }
  }
}

void SharedMeasureCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.evictions += lru_.size();
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

void SharedMeasureCache::set_max_bytes(uint64_t max_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  max_bytes_ = max_bytes;
  EvictToBudgetLocked();
}

uint64_t SharedMeasureCache::max_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_bytes_;
}

SharedMeasureCache::Stats SharedMeasureCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = counters_;
  s.entries = lru_.size();
  s.bytes = bytes_;
  return s;
}

uint64_t SharedMeasureCache::ApproxEntryBytes(const std::string& key,
                                              const Value& v) {
  return sizeof(Entry) + 2 * key.size() + sizeof(void*) * 4 +
         v.str().size();
}

void SharedMeasureCache::EvictToBudgetLocked() {
  while (bytes_ > max_bytes_ && !lru_.empty()) {
    RemoveLocked(std::prev(lru_.end()));
    ++counters_.evictions;
  }
}

void SharedMeasureCache::RemoveLocked(LruList::iterator it) {
  index_.erase(it->key);
  bytes_ -= it->bytes;
  lru_.erase(it);
}

}  // namespace msql

#ifndef MSQL_RUNTIME_SHARED_CACHE_H_
#define MSQL_RUNTIME_SHARED_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/value.h"

namespace msql {

// Engine-wide, thread-safe cache of measure and correlated-subquery scalar
// results, shared across concurrent queries and sessions. This promotes the
// per-query `measure_cache` / `subquery_cache` of ExecState (the paper's
// section 5.1 "localized self-join" strategy) to the cross-query level: once
// any query has evaluated a measure in some evaluation context, every later
// query probing the same (data version, measure, context) triple reuses the
// value instead of re-scanning the measure source — the same reuse the Data
// Cube line of work gets from materializing group-by results once.
//
// Keys are built by the caller from three stable components:
//   * the catalog data generation at which the value was computed (any DDL
//     or DML bumps it, so stale entries can never be observed),
//   * a structural fingerprint of the measure source plan and formula (see
//     runtime/fingerprint.h) — stable across queries, unlike the pointer
//     identities used by the per-query caches,
//   * the evaluation-context signature (EvalContext::Signature()).
//
// The cache is bounded by an approximate byte budget with LRU eviction.
// Insertions carry the generation they were computed at and are rejected if
// an invalidation for a newer generation has already been published; this
// closes the race where a query concurrently observes post-mutation data
// but would publish under its pre-mutation generation snapshot.
class SharedMeasureCache {
 public:
  // Counter snapshot; `entries`/`bytes` are the current residency.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t rejected = 0;   // stale-generation or oversized inserts
    uint64_t evictions = 0;  // LRU + invalidation removals
    uint64_t invalidations = 0;  // generation-floor raises (DDL/DML)
    uint64_t entries = 0;
    uint64_t bytes = 0;
  };

  static constexpr uint64_t kDefaultMaxBytes = 64ull << 20;  // 64 MiB

  explicit SharedMeasureCache(uint64_t max_bytes = kDefaultMaxBytes)
      : max_bytes_(max_bytes) {}

  SharedMeasureCache(const SharedMeasureCache&) = delete;
  SharedMeasureCache& operator=(const SharedMeasureCache&) = delete;

  // On hit, copies the cached value into *out, refreshes LRU recency and
  // returns true. Counts a hit or miss either way.
  bool Lookup(const std::string& key, Value* out);

  // Publishes `value` computed at catalog data generation `generation`.
  // No-op (counted as rejected) when the generation is older than the
  // newest invalidation or the entry alone exceeds the byte budget.
  // Replaces an existing entry with the same key.
  void Insert(const std::string& key, const Value& value,
              uint64_t generation);

  // Type-erased immutable objects — e.g. the grouped strategy's dimension
  // indexes (measure/grouped.h) — share the same budget, LRU and
  // generation-invalidation machinery as scalar entries. Objects are
  // opaque to the cache, so the caller supplies the byte estimate at
  // insert time and uses disjoint key prefixes per object type.
  bool LookupObject(const std::string& key,
                    std::shared_ptr<const void>* out);
  void InsertObject(const std::string& key, std::shared_ptr<const void> object,
                    uint64_t bytes, uint64_t generation);

  // Drops every entry computed at a generation < `generation` and rejects
  // future inserts older than it. Called by the engine after any catalog or
  // table-data mutation, with the post-mutation generation.
  void InvalidateOlderThan(uint64_t generation);

  // Drops everything (keeps counters and the invalidation floor).
  void Clear();

  // Adjusts the byte budget; evicts immediately if shrinking.
  void set_max_bytes(uint64_t max_bytes);
  uint64_t max_bytes() const;

  Stats stats() const;

  // Approximate footprint of one entry: bookkeeping + key (stored twice:
  // LRU node and index) + inline value + string payload.
  static uint64_t ApproxEntryBytes(const std::string& key, const Value& v);

 private:
  struct Entry {
    std::string key;
    Value value;                          // scalar entries
    std::shared_ptr<const void> object;   // object entries (value is NULL)
    uint64_t generation = 0;
    uint64_t bytes = 0;
  };
  using LruList = std::list<Entry>;

  // Pops the least-recently-used entries until under budget. mu_ held.
  void EvictToBudgetLocked();
  void RemoveLocked(LruList::iterator it);

  mutable std::mutex mu_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> index_;
  uint64_t max_bytes_;
  uint64_t bytes_ = 0;
  uint64_t min_generation_ = 0;
  Stats counters_;
};

}  // namespace msql

#endif  // MSQL_RUNTIME_SHARED_CACHE_H_

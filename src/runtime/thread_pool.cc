#include "runtime/thread_pool.h"

namespace msql {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return false;
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
  return true;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace msql

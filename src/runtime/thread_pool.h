#ifndef MSQL_RUNTIME_THREAD_POOL_H_
#define MSQL_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace msql {

// A fixed-size worker pool executing submitted closures FIFO. The pool
// itself is unbounded; admission control (queue depth, per-session limits)
// lives in QueryScheduler, which is the only intended submitter for query
// work. Shutdown() drains the queue and joins the workers; tasks submitted
// after Shutdown are rejected.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `fn`. Returns false (dropping fn) if the pool is shut down.
  bool Submit(std::function<void()> fn);

  // Runs every queued task to completion, then joins the workers.
  // Idempotent.
  void Shutdown();

  int num_threads() const { return static_cast<int>(workers_.size()); }
  size_t queue_depth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace msql

#endif  // MSQL_RUNTIME_THREAD_POOL_H_

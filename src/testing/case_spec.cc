#include "testing/case_spec.h"

#include <cstdlib>

#include "common/string_util.h"

namespace msql {
namespace testing {

const char* CheckKindName(CheckKind kind) {
  switch (kind) {
    case CheckKind::kDifferential: return "differential";
    case CheckKind::kEqualPair: return "equal";
    case CheckKind::kTlp: return "tlp";
  }
  return "?";
}

std::string TableSpec::CreateSql() const {
  std::vector<std::string> cols;
  for (const auto& c : columns) cols.push_back(c.name + " " + c.type);
  return StrCat("CREATE TABLE ", name, " (", Join(cols, ", "), ")");
}

std::string TableSpec::InsertSql() const {
  if (rows.empty()) return "";
  std::vector<std::string> tuples;
  for (const auto& row : rows) {
    tuples.push_back("(" + Join(row, ", ") + ")");
  }
  return StrCat("INSERT INTO ", name, " VALUES ", Join(tuples, ", "));
}

std::vector<std::string> CaseSpec::SetupStatements() const {
  std::vector<std::string> stmts;
  for (const auto& t : tables) {
    stmts.push_back(t.CreateSql());
    std::string insert = t.InsertSql();
    if (!insert.empty()) stmts.push_back(std::move(insert));
  }
  for (const auto& s : setup) stmts.push_back(s);
  return stmts;
}

std::string CaseSpec::ToSql() const {
  std::string out = StrCat("-- msqlcheck case seed=", seed, "\n");
  for (const auto& stmt : SetupStatements()) {
    out += stmt + ";\n";
  }
  for (const auto& check : checks) {
    out += StrCat("-- check: ", CheckKindName(check.kind),
                  check.agg.empty() ? "" : " " + check.agg,
                  check.label.empty() ? "" : "  (" + check.label + ")", "\n");
    for (const auto& q : check.queries) {
      out += q + ";\n";
    }
  }
  return out;
}

namespace {

// Splits a script into ';'-terminated statements, ignoring ';' inside
// single-quoted strings. `--` line comments have already been removed.
std::vector<std::string> SplitStatements(const std::string& text) {
  std::vector<std::string> stmts;
  std::string cur;
  bool in_string = false;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '\'') {
      in_string = !in_string;
      cur += c;
    } else if (c == ';' && !in_string) {
      std::string t = Trim(cur);
      if (!t.empty()) stmts.push_back(std::move(t));
      cur.clear();
    } else {
      cur += c;
    }
  }
  std::string t = Trim(cur);
  if (!t.empty()) stmts.push_back(std::move(t));
  return stmts;
}

bool IsSelect(const std::string& stmt) {
  std::string u = ToUpper(stmt);
  return u.rfind("SELECT", 0) == 0 || u.rfind("WITH", 0) == 0;
}

}  // namespace

Result<CaseSpec> ParseScript(const std::string& text) {
  CaseSpec spec;
  // Walk line by line so `-- check:` directives apply to the statements
  // that follow them; strip every other comment.
  std::string pending;          // statement text accumulated so far
  bool have_directive = false;  // a directive check is open
  auto flush = [&](const std::string& chunk) -> Status {
    for (auto& stmt : SplitStatements(chunk)) {
      if (!IsSelect(stmt)) {
        if (have_directive) {
          return Status(ErrorCode::kInvalidArgument,
                        "msqlcheck script: non-SELECT statement inside a "
                        "-- check: section");
        }
        spec.setup.push_back(std::move(stmt));
      } else if (have_directive) {
        spec.checks.back().queries.push_back(std::move(stmt));
      } else {
        Check c;
        c.kind = CheckKind::kDifferential;
        c.queries.push_back(std::move(stmt));
        spec.checks.push_back(std::move(c));
      }
    }
    return Status::Ok();
  };

  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string line = text.substr(
        pos, eol == std::string::npos ? std::string::npos : eol - pos);
    pos = eol == std::string::npos ? text.size() + 1 : eol + 1;

    std::string trimmed = Trim(line);
    if (trimmed.rfind("--", 0) == 0) {
      std::string directive = Trim(trimmed.substr(2));
      if (directive.rfind("msqlcheck case seed=", 0) == 0) {
        // Header written by ToSql(); restores the originating seed so a
        // replayed repro reports under the same identity.
        spec.seed = std::strtoull(
            directive.c_str() + sizeof("msqlcheck case seed=") - 1, nullptr,
            10);
        continue;
      }
      if (directive.rfind("check:", 0) == 0) {
        // Close the running statement region, then open the new check.
        MSQL_RETURN_IF_ERROR(flush(pending));
        pending.clear();
        std::vector<std::string> words =
            Split(Trim(directive.substr(6)), ' ');
        Check c;
        std::string kind = words.empty() ? "" : ToLower(words[0]);
        if (kind == "differential") {
          c.kind = CheckKind::kDifferential;
        } else if (kind == "equal") {
          c.kind = CheckKind::kEqualPair;
        } else if (kind == "tlp") {
          c.kind = CheckKind::kTlp;
          if (words.size() < 2) {
            return Status(ErrorCode::kInvalidArgument,
                          "msqlcheck script: tlp directive needs an "
                          "aggregate name");
          }
          c.agg = ToUpper(words[1]);
        } else {
          return Status(ErrorCode::kInvalidArgument,
                        "msqlcheck script: unknown check kind '" + kind + "'");
        }
        spec.checks.push_back(std::move(c));
        have_directive = true;
      }
      continue;  // drop all comment lines
    }
    pending += line;
    pending += "\n";
  }
  MSQL_RETURN_IF_ERROR(flush(pending));

  for (const auto& c : spec.checks) {
    if (c.kind == CheckKind::kEqualPair && c.queries.size() != 2) {
      return Status(ErrorCode::kInvalidArgument,
                    "msqlcheck script: 'equal' check needs exactly 2 queries");
    }
    if (c.kind == CheckKind::kTlp && c.queries.size() != 4) {
      return Status(ErrorCode::kInvalidArgument,
                    "msqlcheck script: 'tlp' check needs exactly 4 queries");
    }
  }
  return spec;
}

}  // namespace testing
}  // namespace msql

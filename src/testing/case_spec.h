#ifndef MSQL_TESTING_CASE_SPEC_H_
#define MSQL_TESTING_CASE_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace msql {
namespace testing {

// A generated (or replayed) test case in structured form. The structure —
// tables as column lists plus literal row matrices, setup statements, and
// checks holding query text — is what the delta-debugging shrinker mutates:
// dropping a row, a column, a table, a statement, or a query is a cheap
// edit here, and `ToSql()` re-renders the whole case as a self-contained
// .sql script for the corpus.

struct ColumnSpec {
  std::string name;
  std::string type;  // DDL spelling: INTEGER, DOUBLE, VARCHAR, DATE, BOOLEAN
};

struct TableSpec {
  std::string name;
  std::vector<ColumnSpec> columns;
  // Each cell is a SQL literal ("'A'", "42", "DATE '2024-02-29'", "NULL").
  std::vector<std::vector<std::string>> rows;

  std::string CreateSql() const;
  // Empty string when the table has no rows.
  std::string InsertSql() const;
};

// What relation the oracle enforces over a check's queries.
enum class CheckKind {
  // Every query runs under all four evaluation paths plus the textual
  // expansion; all runs must agree per query.
  kDifferential,
  // Exactly two queries; their (normalized) results must be identical.
  // Used for the paper identities AGGREGATE(m) == m AT (VISIBLE) and the
  // AT (ALL d SET d = CURRENT d) round-trip.
  kEqualPair,
  // Exactly four single-value queries: total, WHERE p, WHERE NOT p,
  // WHERE p IS NULL. The three partition results must recombine (per the
  // aggregate in `agg`) into the total — ternary-logic partitioning.
  kTlp,
};

const char* CheckKindName(CheckKind kind);

struct Check {
  CheckKind kind = CheckKind::kDifferential;
  std::string agg;    // kTlp only: SUM / COUNT / MIN / MAX
  std::string label;  // human-readable tag for reports
  std::vector<std::string> queries;
};

struct CaseSpec {
  uint64_t seed = 0;
  std::vector<TableSpec> tables;
  // Statements run after the tables exist (CREATE VIEW, extra DML).
  std::vector<std::string> setup;
  std::vector<Check> checks;

  // DDL + INSERTs + setup, in execution order.
  std::vector<std::string> SetupStatements() const;

  // Self-contained script: setup statements, then each check introduced by
  // a `-- check: <kind> [agg]` directive followed by its queries. Round-
  // trips through ParseScript.
  std::string ToSql() const;
};

// Loads a .sql script (a corpus file or a shrunk repro) back into a
// CaseSpec. Tables are not re-structured — all non-SELECT statements become
// `setup` entries, which is all replay needs. SELECT statements with no
// preceding directive each become their own differential check.
Result<CaseSpec> ParseScript(const std::string& text);

}  // namespace testing
}  // namespace msql

#endif  // MSQL_TESTING_CASE_SPEC_H_

#include "testing/compare.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/string_util.h"

namespace msql {
namespace testing {

namespace {

bool IsNumericKind(TypeKind k) {
  return k == TypeKind::kInt64 || k == TypeKind::kDouble ||
         k == TypeKind::kBool;
}

int64_t DoubleBits(double d) {
  int64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  // Map the sign-magnitude float encoding onto a monotone integer line so
  // ULP distance is a plain subtraction.
  return bits < 0 ? std::numeric_limits<int64_t>::min() - bits : bits;
}

bool DoublesAgree(double a, double b, const CompareOptions& opts) {
  if (a == b) return true;  // covers equal finite values and same-sign inf
  if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
  if (std::isinf(a) || std::isinf(b)) return false;
  // Bias the monotone signed line into unsigned order (flip the sign bit)
  // so the distance between values straddling zero is the plain unsigned
  // difference rather than a wrapped 2^64 - n.
  uint64_t ua = static_cast<uint64_t>(DoubleBits(a)) ^ (1ull << 63);
  uint64_t ub = static_cast<uint64_t>(DoubleBits(b)) ^ (1ull << 63);
  uint64_t ulps = ua > ub ? ua - ub : ub - ua;
  if (ulps <= static_cast<uint64_t>(opts.double_ulps)) return true;
  double scale = std::max(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= opts.double_rel_tol * scale;
}

}  // namespace

bool ValuesAgree(const Value& a, const Value& b, const CompareOptions& opts) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.kind() == b.kind()) {
    if (a.kind() == TypeKind::kDouble) {
      return DoublesAgree(a.double_val(), b.double_val(), opts);
    }
    return Value::NotDistinct(a, b);
  }
  if (opts.allow_numeric_kind_mismatch && IsNumericKind(a.kind()) &&
      IsNumericKind(b.kind())) {
    return DoublesAgree(a.AsDouble(), b.AsDouble(), opts);
  }
  return false;
}

std::vector<Row> NormalizedRows(const ResultSet& rs) {
  std::vector<Row> rows = rs.rows();
  std::sort(rows.begin(), rows.end(), [](const Row& x, const Row& y) {
    size_t n = std::min(x.size(), y.size());
    for (size_t i = 0; i < n; ++i) {
      int c = Value::Compare(x[i], y[i]);
      if (c != 0) return c < 0;
    }
    return x.size() < y.size();
  });
  return rows;
}

std::optional<std::string> DiffResults(const ResultSet& a, const ResultSet& b,
                                       const CompareOptions& opts) {
  if (a.num_columns() != b.num_columns()) {
    return StrCat("column count ", a.num_columns(), " vs ", b.num_columns());
  }
  if (a.num_rows() != b.num_rows()) {
    return StrCat("row count ", a.num_rows(), " vs ", b.num_rows());
  }
  std::vector<Row> ra = opts.ignore_row_order ? NormalizedRows(a) : a.rows();
  std::vector<Row> rb = opts.ignore_row_order ? NormalizedRows(b) : b.rows();
  for (size_t i = 0; i < ra.size(); ++i) {
    for (size_t c = 0; c < ra[i].size() && c < rb[i].size(); ++c) {
      if (!ValuesAgree(ra[i][c], rb[i][c], opts)) {
        return StrCat("row ", i, " column ", c, " (",
                      c < a.column_names().size() ? a.column_names()[c] : "?",
                      "): ", ra[i][c].ToString(), " vs ", rb[i][c].ToString());
      }
    }
  }
  return std::nullopt;
}

}  // namespace testing
}  // namespace msql

#ifndef MSQL_TESTING_COMPARE_H_
#define MSQL_TESTING_COMPARE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/value.h"
#include "engine/result_set.h"

namespace msql {
namespace testing {

// How result sets are compared across evaluation paths. The defaults encode
// the oracle's normalization: row order is ignored (rows are sorted by the
// engine's total order), NULLs compare with IS NOT DISTINCT FROM semantics,
// and doubles tolerate a few ULPs of divergence (different strategies may
// sum in different orders) plus a relative-epsilon backstop.
struct CompareOptions {
  bool ignore_row_order = true;
  // Two doubles agree when within `double_ulps` units-in-the-last-place or
  // within `double_rel_tol` relative error. NaN agrees with NaN, infinities
  // must match exactly.
  int double_ulps = 64;
  double double_rel_tol = 1e-9;
  // When set, an INT64 cell may agree with a DOUBLE cell of the same
  // numeric value (the textual expansion can change a column's type).
  bool allow_numeric_kind_mismatch = true;
};

// Cell-level agreement under the options above.
bool ValuesAgree(const Value& a, const Value& b, const CompareOptions& opts);

// Rows sorted by the engine's total order (Value::Compare, lexicographic),
// the normalization applied before multiset comparison.
std::vector<Row> NormalizedRows(const ResultSet& rs);

// Full comparison: column counts, row counts, and normalized cell-by-cell
// agreement. Returns std::nullopt when the results agree, else a
// human-readable description of the first difference (row/column indexes
// refer to the normalized order).
std::optional<std::string> DiffResults(const ResultSet& a, const ResultSet& b,
                                       const CompareOptions& opts = {});

}  // namespace testing
}  // namespace msql

#endif  // MSQL_TESTING_COMPARE_H_

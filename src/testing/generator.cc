#include "testing/generator.h"

#include "common/string_util.h"
#include "testing/rng.h"

namespace msql {
namespace testing {

namespace {

struct MeasureDef {
  std::string name;
  std::string agg;  // SUM / COUNT / MIN / MAX / AVG
  std::string arg;  // "" for COUNT(*)
};

// Everything the query generator needs to know about the schema it built.
struct SchemaInfo {
  bool has_d2 = false;    // DATE dimension on the fact table
  bool has_v1 = false;    // DOUBLE value column
  bool has_y2 = false;    // derived YEAR(d2) dimension in the view
  bool has_join = false;  // dim table t1(d0, attr) exists
  int d0_domain = 3;      // 'A'.. up to 'E'
  int d1_domain = 3;      // 0 .. d1_domain
  std::vector<MeasureDef> measures;
  std::vector<std::string> dims;  // group-able dims exposed by the view
};

const char* kDates[] = {"DATE '2023-01-15'", "DATE '2023-06-01'",
                        "DATE '2024-02-29'", "DATE '2024-12-31'"};
const char* kDoubles[] = {"0.5",    "1.5",   "-2.25",      "0.125",
                          "1000.25", "-0.75", "123456.789", "1e100"};
const char* kExtremeInts[] = {"1099511627776", "-1099511627776", "2147483647",
                              "-2147483648"};

class Generator {
 public:
  Generator(uint64_t seed, const GeneratorOptions& opts)
      : rng_(seed), opts_(opts) {}

  CaseSpec Generate(uint64_t seed) {
    CaseSpec spec;
    spec.seed = seed;
    BuildSchema(&spec);
    for (int i = 0; i < opts_.num_queries; ++i) {
      Check c;
      c.kind = CheckKind::kDifferential;
      c.label = StrCat("q", i);
      c.queries.push_back(GenQuery());
      spec.checks.push_back(std::move(c));
    }
    if (opts_.metamorphic) {
      AddVisiblePair(&spec);
      AddTlp(&spec);
      AddAllSetRoundtrip(&spec);
    }
    return spec;
  }

 private:
  // ---- literals -----------------------------------------------------------

  std::string D0Lit(bool allow_null = true) {
    if (allow_null && rng_.Chance(25)) return "NULL";
    if (rng_.Chance(4)) return "'it''s'";  // exercises quote escaping
    return StrCat("'", static_cast<char>('A' + rng_.Range(0, info_.d0_domain)),
                  "'");
  }
  std::string D1Lit(bool allow_null = true) {
    if (allow_null && rng_.Chance(25)) return "NULL";
    return StrCat(rng_.Range(0, info_.d1_domain));
  }
  std::string D2Lit(bool allow_null = true) {
    if (allow_null && rng_.Chance(25)) return "NULL";
    return kDates[rng_.Range(0, 3)];
  }
  std::string V0Lit() {
    if (rng_.Chance(15)) return "NULL";
    if (rng_.Chance(10)) return kExtremeInts[rng_.Range(0, 3)];
    return StrCat(rng_.Range(-100, 100));
  }
  std::string V1Lit() {
    if (rng_.Chance(15)) return "NULL";
    return kDoubles[rng_.Range(0, 7)];
  }

  // ---- schema -------------------------------------------------------------

  void BuildSchema(CaseSpec* spec) {
    info_.d0_domain = static_cast<int>(rng_.Range(1, 4));
    info_.d1_domain = static_cast<int>(rng_.Range(1, 4));
    info_.has_d2 = rng_.Chance(60);
    info_.has_v1 = rng_.Chance(60);
    info_.has_join = rng_.Chance(40);

    TableSpec fact;
    fact.name = "t0";
    fact.columns.push_back({"d0", "VARCHAR"});
    fact.columns.push_back({"d1", "INTEGER"});
    if (info_.has_d2) fact.columns.push_back({"d2", "DATE"});
    fact.columns.push_back({"v0", "INTEGER"});
    if (info_.has_v1) fact.columns.push_back({"v1", "DOUBLE"});

    int n = rng_.Chance(8) ? 0 : static_cast<int>(rng_.Range(1, opts_.max_rows));
    for (int i = 0; i < n; ++i) {
      if (!fact.rows.empty() && rng_.Chance(15)) {
        // Exact duplicate row: duplicate dimension tuples must group and
        // probe identically on every path.
        fact.rows.push_back(fact.rows[static_cast<size_t>(
            rng_.Range(0, fact.rows.size() - 1))]);
        continue;
      }
      std::vector<std::string> row;
      row.push_back(D0Lit());
      row.push_back(D1Lit());
      if (info_.has_d2) row.push_back(D2Lit());
      row.push_back(V0Lit());
      if (info_.has_v1) row.push_back(V1Lit());
      fact.rows.push_back(std::move(row));
    }
    spec->tables.push_back(std::move(fact));

    if (info_.has_join) {
      TableSpec dim;
      dim.name = "t1";
      dim.columns.push_back({"d0", "VARCHAR"});
      dim.columns.push_back({"attr", "INTEGER"});
      int dn = static_cast<int>(rng_.Range(0, info_.d0_domain + 3));
      for (int i = 0; i < dn; ++i) {
        // Keys drawn from the fact domain plus NULLs and an unmatched
        // straggler; duplicate keys make the join fan out.
        std::string key = rng_.Chance(12) ? "'ZZ'" : D0Lit();
        dim.rows.push_back({key, D1Lit(false)});
      }
      spec->tables.push_back(std::move(dim));
    }

    // Measure view over the fact table.
    int nm = static_cast<int>(rng_.Range(1, 3));
    std::vector<std::string> defs;
    for (int i = 0; i < nm; ++i) {
      MeasureDef m;
      m.name = StrCat("m", i);
      m.agg = rng_.PickStr({"SUM", "COUNT", "MIN", "MAX", "AVG"});
      if (m.agg == "COUNT" && rng_.Chance(50)) {
        m.arg = "*";
      } else {
        m.arg = info_.has_v1 && rng_.Chance(35) ? "v1" : "v0";
        if (m.agg == "SUM" && rng_.Chance(20)) m.arg = "v0 + v0";
      }
      defs.push_back(StrCat(m.agg, "(", m.arg, ") AS MEASURE ", m.name));
      info_.measures.push_back(std::move(m));
    }
    info_.has_y2 = info_.has_d2 && rng_.Chance(50);
    std::string view = "CREATE VIEW V0 AS SELECT *, " + Join(defs, ", ");
    if (info_.has_y2) view += ", YEAR(d2) AS y2";
    view += " FROM t0";
    spec->setup.push_back(std::move(view));

    info_.dims = {"d0", "d1"};
    if (info_.has_d2) info_.dims.push_back("d2");
    if (info_.has_y2) info_.dims.push_back("y2");
  }

  // ---- predicates ---------------------------------------------------------

  std::string DimLitFor(const std::string& dim) {
    if (dim == "d0") return D0Lit(false);
    if (dim == "d1") return D1Lit(false);
    if (dim == "d2") return D2Lit(false);
    return StrCat(rng_.Range(2022, 2025));  // y2
  }

  std::string PredAtom(const std::string& q) {
    switch (rng_.Range(0, 6)) {
      case 0: return StrCat(q, "d0 = ", D0Lit(false));
      case 1: return StrCat(q, "d0 <> 'A'");
      case 2: return StrCat(q, "d0 IS NULL");
      case 3: return StrCat(q, "d1 >= ", D1Lit(false));
      case 4: return StrCat(q, "d1 IN (", rng_.Range(0, 2), ", ",
                            rng_.Range(2, 4), ")");
      case 5: return StrCat(q, "v0 > ", rng_.Range(-50, 50));
      default:
        if (info_.has_d2 && rng_.Chance(50)) {
          return StrCat(q, "d2 >= ", kDates[rng_.Range(0, 3)]);
        }
        return StrCat(q, "v0 <= ", rng_.Range(-20, 80));
    }
  }

  std::string Pred(const std::string& q = "") {
    std::string p = PredAtom(q);
    if (rng_.Chance(35)) {
      p = StrCat(p, rng_.Chance(50) ? " AND " : " OR ", PredAtom(q));
    }
    if (rng_.Chance(15)) p = "NOT (" + p + ")";
    return p;
  }

  // ---- AT modifiers -------------------------------------------------------

  // `q` prefixes every dimension reference ("o." in join queries);
  // `group_dims` are the dims of the surrounding GROUP BY (CURRENT is only
  // generated for those).
  std::string AtModifiers(const std::string& q,
                          const std::vector<std::string>& group_dims) {
    int count = rng_.Chance(25) ? 2 : 1;
    std::vector<std::string> mods;
    for (int i = 0; i < count; ++i) {
      switch (rng_.Range(0, 4)) {
        case 0:
          mods.push_back("ALL");
          break;
        case 1: {
          std::string m = "ALL";
          int nd = static_cast<int>(rng_.Range(1, 2));
          for (int d = 0; d < nd; ++d) {
            m += " " + q + rng_.Pick(info_.dims);
          }
          mods.push_back(std::move(m));
          break;
        }
        case 2: {
          std::string dim = rng_.Pick(info_.dims);
          bool in_group = false;
          for (const auto& g : group_dims) in_group = in_group || g == dim;
          std::string value;
          if (in_group && rng_.Chance(60)) {
            value = "CURRENT " + dim;
            if (dim == "d1" && rng_.Chance(50)) value += " - 1";
            if (dim == "y2" && rng_.Chance(50)) value += " - 1";
          } else {
            value = DimLitFor(dim);
          }
          mods.push_back(StrCat("SET ", q, dim, " = ", value));
          break;
        }
        case 3:
          mods.push_back("VISIBLE");
          break;
        default:
          mods.push_back("WHERE " + Pred(q));
          break;
      }
    }
    return Join(mods, " ");
  }

  // ---- queries ------------------------------------------------------------

  std::string MeasureItem(const std::string& q, const std::string& m,
                          const std::vector<std::string>& group_dims,
                          int alias_no) {
    std::string expr;
    switch (rng_.Range(0, 3)) {
      case 0:
        expr = StrCat("AGGREGATE(", q, m, ")");
        break;
      case 1:
        expr = q + m;
        break;
      case 2:
        expr = StrCat(q, m, " AT (", AtModifiers(q, group_dims), ")");
        break;
      default:
        expr = StrCat(q, m, " - ", q, m, " AT (", AtModifiers(q, group_dims),
                      ")");
        break;
    }
    return StrCat(expr, " AS x", alias_no);
  }

  // A differential query over the measure view (sometimes joined to the
  // dim table, sometimes over an inline measure provider).
  std::string GenQuery() {
    bool join = info_.has_join && rng_.Chance(20);
    bool inline_provider = !join && rng_.Chance(15);

    std::string from;
    std::string q;  // qualifier for fact/view columns
    std::vector<std::string> measures;
    if (join) {
      from = "V0 AS o JOIN t1 AS c ON o.d0 = c.d0";
      q = "o.";
      for (const auto& m : info_.measures) measures.push_back(m.name);
    } else if (inline_provider) {
      from = "(SELECT *, SUM(v0) AS MEASURE q0, COUNT(*) AS MEASURE q1 "
             "FROM t0) AS s";
      measures = {"q0", "q1"};
    } else {
      from = "V0";
      for (const auto& m : info_.measures) measures.push_back(m.name);
    }

    // Group dims: a subset of the view dims (joined queries may also group
    // by the dim-table attribute).
    std::vector<std::string> group_dims;
    std::vector<std::string> group_exprs;
    int ng = static_cast<int>(rng_.Range(0, 2));
    for (int i = 0; i < ng; ++i) {
      std::string dim = rng_.Pick(info_.dims);
      if (inline_provider && (dim == "y2")) dim = "d0";
      bool dup = false;
      for (const auto& g : group_dims) dup = dup || g == dim;
      if (dup) continue;
      group_dims.push_back(dim);
      group_exprs.push_back(q + dim);
    }
    if (join && rng_.Chance(40)) {
      group_exprs.push_back("c.attr");
    }

    std::vector<std::string> items = group_exprs;
    int nm = static_cast<int>(rng_.Range(1, 3));
    for (int i = 0; i < nm; ++i) {
      items.push_back(
          MeasureItem(q, rng_.Pick(measures), group_dims, i));
    }

    std::string sql = "SELECT " + Join(items, ", ") + " FROM " + from;
    if (rng_.Chance(50)) sql += " WHERE " + Pred(q);
    if (!group_exprs.empty()) sql += " GROUP BY " + Join(group_exprs, ", ");
    if (!group_exprs.empty() && rng_.Chance(15)) {
      sql += StrCat(" HAVING AGGREGATE(", q, measures[0], ")",
                    rng_.Chance(50) ? " IS NOT NULL"
                                    : StrCat(" > ", rng_.Range(-20, 20)));
    }
    if (!group_exprs.empty() && rng_.Chance(30)) {
      std::vector<std::string> obs;
      for (const auto& g : group_exprs) obs.push_back(g + " NULLS LAST");
      sql += " ORDER BY " + Join(obs, ", ");
    }
    return sql;
  }

  // ---- metamorphic checks -------------------------------------------------

  // Pick 1-2 distinct group dims for a metamorphic query.
  std::vector<std::string> PickGroupDims() {
    std::vector<std::string> dims;
    dims.push_back(rng_.Pick(info_.dims));
    if (rng_.Chance(40)) {
      std::string second = rng_.Pick(info_.dims);
      if (second != dims[0]) dims.push_back(second);
    }
    return dims;
  }

  // Paper section 3.5: AGGREGATE(m) is sugar for EVAL(m AT (VISIBLE)).
  void AddVisiblePair(CaseSpec* spec) {
    const MeasureDef& m = rng_.Pick(info_.measures);
    std::vector<std::string> dims = PickGroupDims();
    std::string where = rng_.Chance(50) ? " WHERE " + Pred() : "";
    std::string tail =
        StrCat(" FROM V0", where, " GROUP BY ", Join(dims, ", "));
    Check c;
    c.kind = CheckKind::kEqualPair;
    c.label = "aggregate-equals-at-visible";
    c.queries.push_back(StrCat("SELECT ", Join(dims, ", "), ", AGGREGATE(",
                               m.name, ") AS x", tail));
    c.queries.push_back(StrCat("SELECT ", Join(dims, ", "), ", ", m.name,
                               " AT (VISIBLE) AS x", tail));
    spec->checks.push_back(std::move(c));
  }

  // TLP (ternary logic partitioning): the grand total must equal the
  // recombination of the three WHERE partitions p / NOT p / p IS NULL.
  void AddTlp(CaseSpec* spec) {
    const MeasureDef* m = nullptr;
    for (const auto& cand : info_.measures) {
      if (cand.agg != "AVG") {
        m = &cand;
        break;
      }
    }
    if (m == nullptr) return;  // AVG does not recombine; skip
    std::string p = Pred();
    std::string head = StrCat("SELECT AGGREGATE(", m->name, ") AS x FROM V0");
    Check c;
    c.kind = CheckKind::kTlp;
    c.agg = m->agg;
    c.label = "tlp-" + m->agg;
    c.queries.push_back(head);
    c.queries.push_back(StrCat(head, " WHERE ", p));
    c.queries.push_back(StrCat(head, " WHERE NOT (", p, ")"));
    c.queries.push_back(StrCat(head, " WHERE (", p, ") IS NULL"));
    spec->checks.push_back(std::move(c));
  }

  // AT (ALL d) reopens dimension d, SET d = CURRENT d pins it back to the
  // group's value: the round trip must be the identity.
  void AddAllSetRoundtrip(CaseSpec* spec) {
    const MeasureDef& m = rng_.Pick(info_.measures);
    std::vector<std::string> dims = PickGroupDims();
    const std::string& d = dims[0];
    std::string tail = StrCat(" FROM V0 GROUP BY ", Join(dims, ", "));
    Check c;
    c.kind = CheckKind::kEqualPair;
    c.label = "all-set-roundtrip";
    c.queries.push_back(
        StrCat("SELECT ", Join(dims, ", "), ", ", m.name, " AS x", tail));
    c.queries.push_back(StrCat("SELECT ", Join(dims, ", "), ", ", m.name,
                               " AT (ALL ", d, " SET ", d, " = CURRENT ", d,
                               ") AS x", tail));
    spec->checks.push_back(std::move(c));
  }

  Rng rng_;
  GeneratorOptions opts_;
  SchemaInfo info_;
};

}  // namespace

CaseSpec GenerateCase(uint64_t seed, const GeneratorOptions& options) {
  Generator gen(seed, options);
  return gen.Generate(seed);
}

}  // namespace testing
}  // namespace msql

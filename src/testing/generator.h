#ifndef MSQL_TESTING_GENERATOR_H_
#define MSQL_TESTING_GENERATOR_H_

#include <cstdint>

#include "testing/case_spec.h"

namespace msql {
namespace testing {

struct GeneratorOptions {
  // Upper bound on fact-table rows (the generator also produces empty
  // tables and duplicate dimension tuples on purpose).
  int max_rows = 60;
  // Number of differential queries generated per case.
  int num_queries = 5;
  // Also emit the metamorphic checks (visible-pair, TLP, ALL/SET
  // round-trip) alongside the differential ones.
  bool metamorphic = true;
};

// Deterministically generates a full test case from a seed: a randomized
// star-ish schema (NULL-heavy dimension columns, optional date dimension,
// optional join table, extreme numerics, sometimes an empty table), a
// measure view over the fact table, and a batch of queries exercising AT
// modifiers (ALL / ALL dim / SET / VISIBLE / WHERE), CURRENT dim, joins,
// inline measure providers, and GROUP BY. The same (seed, options) pair
// always produces the identical CaseSpec on every platform.
CaseSpec GenerateCase(uint64_t seed, const GeneratorOptions& options = {});

}  // namespace testing
}  // namespace msql

#endif  // MSQL_TESTING_GENERATOR_H_

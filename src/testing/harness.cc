#include "testing/harness.h"

#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/string_util.h"

namespace msql {
namespace testing {

SeedReport RunSeed(uint64_t seed, const HarnessOptions& options) {
  SeedReport report;
  report.seed = seed;

  CaseSpec spec = GenerateCase(seed, options.generator);
  report.outcome = RunCase(spec, options.oracle);
  if (report.outcome.ok()) return report;

  CaseSpec minimal = std::move(spec);
  if (options.shrink_failures) {
    // A candidate whose setup no longer runs is a different (uninteresting)
    // failure, not a smaller instance of this one.
    auto still_fails = [&](const CaseSpec& cand) {
      CaseOutcome o = RunCase(cand, options.oracle);
      return !o.ok() && !o.setup_failed;
    };
    minimal = Shrink(std::move(minimal), still_fails, options.shrink_budget,
                     &report.shrink_stats);
  }
  report.repro_sql = minimal.ToSql();

  if (!options.repro_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.repro_dir, ec);
    std::filesystem::path path =
        std::filesystem::path(options.repro_dir) /
        StrCat("seed_", std::to_string(seed), ".sql");
    std::ofstream out(path);
    if (out) {
      out << report.repro_sql;
      report.repro_path = path.string();
    }
  }
  return report;
}

RunSummary RunSeeds(uint64_t first_seed, int count,
                    const HarnessOptions& options, std::ostream* progress) {
  RunSummary summary;
  for (int i = 0; i < count; ++i) {
    const uint64_t seed = first_seed + static_cast<uint64_t>(i);
    SeedReport report = RunSeed(seed, options);
    ++summary.seeds_run;
    summary.queries_run += report.outcome.queries_run;
    summary.expansion_skips += report.outcome.expansion_skips;
    if (!report.ok()) {
      ++summary.seeds_failed;
      if (progress != nullptr) {
        *progress << "FAIL seed " << seed << " ("
                  << report.outcome.failures.size() << " failure"
                  << (report.outcome.failures.size() == 1 ? "" : "s");
        if (!report.repro_path.empty()) {
          *progress << ", repro: " << report.repro_path;
        }
        *progress << ")\n";
        for (const CheckFailure& f : report.outcome.failures) {
          *progress << "  [" << f.label << "] " << f.detail << "\n";
        }
      }
      summary.failures.push_back(std::move(report));
    } else if (progress != nullptr && (i + 1) % 50 == 0) {
      *progress << ".. " << (i + 1) << "/" << count << " seeds, "
                << summary.queries_run << " queries, "
                << summary.seeds_failed << " failed\n";
    }
  }
  return summary;
}

Result<CaseOutcome> ReplayScript(const std::string& text,
                                 const OracleOptions& options) {
  auto spec = ParseScript(text);
  MSQL_RETURN_IF_ERROR(spec.status());
  return RunCase(spec.value(), options);
}

Result<CaseOutcome> ReplayScriptFile(const std::string& path,
                                     const OracleOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status(ErrorCode::kIo, StrCat("cannot open script: ", path));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReplayScript(buf.str(), options);
}

}  // namespace testing
}  // namespace msql

#ifndef MSQL_TESTING_HARNESS_H_
#define MSQL_TESTING_HARNESS_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "testing/generator.h"
#include "testing/oracle.h"
#include "testing/shrinker.h"

namespace msql {
namespace testing {

// Ties the subsystem together for tools/msqlcheck and the replay tests:
// generate a case from a seed, run the four-way oracle over it, and on
// failure shrink to a minimal spec and emit a self-contained .sql repro.

struct HarnessOptions {
  GeneratorOptions generator;
  OracleOptions oracle;
  // Minimize failing cases with the delta-debugging shrinker before
  // reporting; each predicate call re-runs the full oracle.
  bool shrink_failures = true;
  int shrink_budget = 300;
  // When non-empty, failing seeds write `seed_<N>.sql` repro scripts here
  // (directory is created if missing).
  std::string repro_dir;
};

struct SeedReport {
  uint64_t seed = 0;
  // Outcome on the un-shrunk generated case.
  CaseOutcome outcome;
  // Minimized self-contained repro script; empty when the seed passed.
  std::string repro_sql;
  // Path the repro was written to (empty unless repro_dir was set).
  std::string repro_path;
  ShrinkStats shrink_stats;

  bool ok() const { return outcome.ok(); }
};

SeedReport RunSeed(uint64_t seed, const HarnessOptions& options = {});

struct RunSummary {
  int seeds_run = 0;
  int seeds_failed = 0;
  int queries_run = 0;
  int expansion_skips = 0;
  std::vector<SeedReport> failures;

  bool ok() const { return seeds_failed == 0; }
};

// Runs seeds [first_seed, first_seed + count). When `progress` is non-null,
// one line per failing seed (plus a periodic heartbeat) is streamed to it.
RunSummary RunSeeds(uint64_t first_seed, int count,
                    const HarnessOptions& options = {},
                    std::ostream* progress = nullptr);

// Replays a corpus / repro script (see CaseSpec::ToSql for the format)
// through the oracle. Errors are script-parse failures; oracle
// discrepancies are reported inside the outcome.
Result<CaseOutcome> ReplayScript(const std::string& text,
                                 const OracleOptions& options = {});
Result<CaseOutcome> ReplayScriptFile(const std::string& path,
                                     const OracleOptions& options = {});

}  // namespace testing
}  // namespace msql

#endif  // MSQL_TESTING_HARNESS_H_

#include "testing/oracle.h"

#include <iterator>
#include <memory>

#include "common/string_util.h"
#include "engine/engine.h"

namespace msql {
namespace testing {

namespace {

struct Leg {
  const char* name;
  MeasureStrategy strategy;
  int parallelism;
  ExecMode exec_mode;
};

struct QueryRun {
  Status status;
  ResultSet rs;
};

// Runs setup + one query on a fresh engine with the given options, so no
// cross-query or cross-strategy cache state can mask a divergence.
QueryRun RunOn(const EngineOptions& options,
               const std::vector<std::string>& setup,
               const std::string& query, Status* setup_error) {
  QueryRun run;
  Engine db(options);
  for (const auto& stmt : setup) {
    Status st = db.Execute(stmt);
    if (!st.ok()) {
      if (setup_error != nullptr) *setup_error = st;
      run.status = st;
      return run;
    }
  }
  auto result = db.Query(query);
  run.status = result.status();
  if (result.ok()) run.rs = result.take();
  return run;
}

Value CombineTlp(const std::string& agg, const std::vector<Value>& parts) {
  if (agg == "COUNT") {
    int64_t total = 0;
    for (const auto& p : parts) {
      if (!p.is_null()) total += p.int_val();
    }
    return Value::Int(total);
  }
  if (agg == "SUM") {
    bool any = false, any_double = false;
    int64_t isum = 0;
    double dsum = 0;
    for (const auto& p : parts) {
      if (p.is_null()) continue;
      any = true;
      if (p.kind() == TypeKind::kDouble) any_double = true;
      if (p.kind() == TypeKind::kInt64) isum += p.int_val();
      dsum += p.AsDouble();
    }
    if (!any) return Value::Null();
    return any_double ? Value::Double(dsum) : Value::Int(isum);
  }
  // MIN / MAX: fold with the engine's total order.
  Value best;
  for (const auto& p : parts) {
    if (p.is_null()) continue;
    if (best.is_null()) {
      best = p;
    } else if (agg == "MIN" ? Value::Compare(p, best) < 0
                            : Value::Compare(p, best) > 0) {
      best = p;
    }
  }
  return best;
}

}  // namespace

CaseOutcome RunCase(const CaseSpec& spec, const OracleOptions& options) {
  CaseOutcome outcome;
  const std::vector<std::string> setup = spec.SetupStatements();

  const int workers = options.measure_workers > 1 ? options.measure_workers : 4;
  // Full strategy matrix under both execution modes, 8 legs. The base leg
  // is the naive strategy on the row-at-a-time interpreter — the slowest,
  // most-literal evaluation — so every optimization (memoization, grouped
  // indexes, parallelism, vectorized kernels) is differentially checked
  // against it bit for bit.
  const Leg legs[] = {
      {"naive-row", MeasureStrategy::kNaive, 1, ExecMode::kRow},
      {"naive-vec", MeasureStrategy::kNaive, 1, ExecMode::kVectorized},
      {"memoized-row", MeasureStrategy::kMemoized, 1, ExecMode::kRow},
      {"memoized-vec", MeasureStrategy::kMemoized, 1, ExecMode::kVectorized},
      {"grouped-row", MeasureStrategy::kGrouped, 1, ExecMode::kRow},
      {"grouped-vec", MeasureStrategy::kGrouped, 1, ExecMode::kVectorized},
      {"grouped-parallel-row", MeasureStrategy::kGrouped, workers,
       ExecMode::kRow},
      {"grouped-parallel-vec", MeasureStrategy::kGrouped, workers,
       ExecMode::kVectorized},
  };

  for (size_t ci = 0; ci < spec.checks.size(); ++ci) {
    const Check& check = spec.checks[ci];
    auto fail = [&](std::string detail) {
      outcome.failures.push_back(
          {ci, check.label.empty() ? CheckKindName(check.kind) : check.label,
           std::move(detail)});
    };

    // Results of each query on the grouped-serial leg, for the metamorphic
    // relations below.
    std::vector<QueryRun> reference;
    bool differential_failed = false;

    for (const auto& query : check.queries) {
      ++outcome.queries_run;
      std::vector<QueryRun> runs;
      for (const Leg& leg : legs) {
        EngineOptions eopts;
        eopts.measure_strategy = leg.strategy;
        eopts.measure_parallelism = leg.parallelism;
        eopts.exec_mode = leg.exec_mode;
        Status setup_error;
        runs.push_back(RunOn(eopts, setup, query, &setup_error));
        if (!setup_error.ok()) {
          outcome.setup_failed = true;
          fail(StrCat("setup failed on leg ", leg.name, ": ",
                      setup_error.ToString()));
          return outcome;
        }
      }
      reference.push_back(runs[5]);  // grouped-vec: the default engine config

      const QueryRun& base = runs[0];
      for (size_t li = 1; li < std::size(legs); ++li) {
        const QueryRun& other = runs[li];
        if (base.status.ok() != other.status.ok()) {
          fail(StrCat(legs[0].name, " vs ", legs[li].name, ": ",
                      base.status.ok() ? "ok" : base.status.ToString(), " vs ",
                      other.status.ok() ? "ok" : other.status.ToString(),
                      "\n  query: ", query));
          differential_failed = true;
          continue;
        }
        if (!base.status.ok()) {
          if (base.status.code() != other.status.code()) {
            fail(StrCat(legs[0].name, " vs ", legs[li].name,
                        ": different error codes: ", base.status.ToString(),
                        " vs ", other.status.ToString(), "\n  query: ", query));
            differential_failed = true;
          }
          continue;
        }
        if (auto diff = DiffResults(base.rs, other.rs, options.compare)) {
          fail(StrCat(legs[0].name, " vs ", legs[li].name, ": ", *diff,
                      "\n  query: ", query));
          differential_failed = true;
        }
      }

      // Expansion leg: rewrite to plain SQL, then execute on a fresh engine.
      if (options.include_expansion && base.status.ok()) {
        EngineOptions eopts;
        Engine db(eopts);
        bool setup_ok = true;
        for (const auto& stmt : setup) {
          if (!db.Execute(stmt).ok()) setup_ok = false;
        }
        if (setup_ok) {
          auto expanded = db.ExpandSql(query);
          if (!expanded.ok()) {
            if (expanded.status().code() == ErrorCode::kNotImplemented) {
              ++outcome.expansion_skips;  // joins / composition: unsupported
            } else {
              fail(StrCat("expansion rewrite failed: ",
                          expanded.status().ToString(), "\n  query: ", query));
              differential_failed = true;
            }
          } else {
            auto plain = db.Query(expanded.value());
            if (!plain.ok()) {
              fail(StrCat("expanded SQL failed to execute: ",
                          plain.status().ToString(), "\n  query: ", query,
                          "\n  expanded: ", expanded.value()));
              differential_failed = true;
            } else if (auto diff =
                           DiffResults(base.rs, plain.value(), options.compare)) {
              fail(StrCat(legs[0].name, " vs expansion: ", *diff,
                          "\n  query: ", query,
                          "\n  expanded: ", expanded.value()));
              differential_failed = true;
            }
          }
        }
      }
    }

    if (differential_failed) continue;  // relation would double-report

    if (check.kind == CheckKind::kEqualPair && check.queries.size() == 2) {
      const QueryRun& a = reference[0];
      const QueryRun& b = reference[1];
      if (!a.status.ok() || !b.status.ok()) {
        fail(StrCat("equal-pair query failed: ",
                    (!a.status.ok() ? a.status : b.status).ToString(),
                    "\n  query: ",
                    !a.status.ok() ? check.queries[0] : check.queries[1]));
      } else if (auto diff = DiffResults(a.rs, b.rs, options.compare)) {
        fail(StrCat("metamorphic pair disagrees: ", *diff, "\n  query A: ",
                    check.queries[0], "\n  query B: ", check.queries[1]));
      }
    } else if (check.kind == CheckKind::kTlp && check.queries.size() == 4) {
      bool all_ok = true;
      for (const auto& r : reference) all_ok = all_ok && r.status.ok();
      if (!all_ok) {
        for (size_t i = 0; i < reference.size(); ++i) {
          if (!reference[i].status.ok()) {
            fail(StrCat("tlp query failed: ", reference[i].status.ToString(),
                        "\n  query: ", check.queries[i]));
            break;
          }
        }
      } else {
        Value total = reference[0].rs.Get(0, 0);
        Value combined = CombineTlp(
            check.agg, {reference[1].rs.Get(0, 0), reference[2].rs.Get(0, 0),
                        reference[3].rs.Get(0, 0)});
        if (!ValuesAgree(total, combined, options.compare)) {
          fail(StrCat("tlp partitions do not recombine: total ",
                      total.ToString(), " vs parts ", combined.ToString(),
                      " (", reference[1].rs.Get(0, 0).ToString(), " / ",
                      reference[2].rs.Get(0, 0).ToString(), " / ",
                      reference[3].rs.Get(0, 0).ToString(), ")",
                      "\n  total query: ", check.queries[0]));
        }
      }
    }
  }
  return outcome;
}

}  // namespace testing
}  // namespace msql

#ifndef MSQL_TESTING_ORACLE_H_
#define MSQL_TESTING_ORACLE_H_

#include <string>
#include <vector>

#include "testing/case_spec.h"
#include "testing/compare.h"

namespace msql {
namespace testing {

struct OracleOptions {
  CompareOptions compare;
  // Worker count for the parallel-grouped leg (>1, or the leg degenerates
  // into the serial one).
  int measure_workers = 4;
  // Run the ExpandMeasures -> plain SQL leg (skipped automatically per
  // query when the expander reports the shape unsupported).
  bool include_expansion = true;
};

struct CheckFailure {
  size_t check_index = 0;
  std::string label;
  std::string detail;
};

struct CaseOutcome {
  int queries_run = 0;
  int expansion_skips = 0;
  // The case's DDL/DML itself failed (the run aborts). Distinguished so the
  // shrinker never "minimizes" a real discrepancy into a broken setup.
  bool setup_failed = false;
  std::vector<CheckFailure> failures;

  bool ok() const { return failures.empty(); }
};

// The four-way differential oracle. Every query of every check runs under
// kNaive, kMemoized, kGrouped serial (measure_parallelism = 1), and
// kGrouped parallel (measure_parallelism = measure_workers) — each on a
// fresh engine so no cross-strategy cache can mask a divergence — plus the
// section-4.2 textual expansion executed as plain SQL. All runs of a query
// must agree: same success/error outcome (error codes must match), and on
// success, normalized-equal results. kEqualPair / kTlp checks additionally
// enforce their metamorphic relation on the default path's results.
CaseOutcome RunCase(const CaseSpec& spec, const OracleOptions& options = {});

}  // namespace testing
}  // namespace msql

#endif  // MSQL_TESTING_ORACLE_H_

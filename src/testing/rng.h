#ifndef MSQL_TESTING_RNG_H_
#define MSQL_TESTING_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace msql {
namespace testing {

// Deterministic random source for the generative harness. Unlike the
// <random> distributions (whose output is implementation-defined), every
// derived draw here is specified in terms of the raw splitmix64 stream, so
// the same seed yields the same schemas/data/queries on every platform and
// standard library — the property `msqlcheck --seed=N` relies on.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ^ 0x9e3779b97f4a7c15ULL) {}

  uint64_t Next() {
    // splitmix64 (public-domain constants).
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform integer in [lo, hi] inclusive. Modulo bias is irrelevant for
  // test-case generation.
  int64_t Range(int64_t lo, int64_t hi) {
    if (hi <= lo) return lo;
    return lo + static_cast<int64_t>(Next() %
                                     static_cast<uint64_t>(hi - lo + 1));
  }

  // True with probability pct/100.
  bool Chance(int pct) { return Range(0, 99) < pct; }

  // Uniform pick from a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[static_cast<size_t>(Range(0, items.size() - 1))];
  }

  // Uniform pick from a braced list of string literals.
  std::string PickStr(std::initializer_list<const char*> items) {
    size_t i = static_cast<size_t>(Range(0, items.size() - 1));
    return *(items.begin() + i);
  }

 private:
  uint64_t state_;
};

}  // namespace testing
}  // namespace msql

#endif  // MSQL_TESTING_RNG_H_

#include "testing/shrinker.h"

#include <algorithm>

#include "common/string_util.h"
#include "parser/parser.h"
#include "parser/unparser.h"

namespace msql {
namespace testing {

namespace {

// Applies the `target`-th single-node mutation encountered during a fixed
// pre-order traversal of a SELECT AST. Iterating target = 0, 1, 2, ...
// until nothing applies enumerates every one-step simplification of the
// statement.
class Mutator {
 public:
  explicit Mutator(int target) : target_(target) {}
  bool applied() const { return applied_; }

  void MutateSelect(SelectStmt* s) {
    if (s == nullptr || applied_) return;
    if (s->where) {
      if (Hit()) {
        s->where.reset();
        return;
      }
      if (s->where->kind == ExprKind::kBinary &&
          (s->where->binary_op == BinaryOp::kAnd ||
           s->where->binary_op == BinaryOp::kOr)) {
        if (Hit()) {
          s->where = std::move(s->where->left);
          return;
        }
        if (Hit()) {
          s->where = std::move(s->where->right);
          return;
        }
      }
    }
    if (s->having && Hit()) {
      s->having.reset();
      return;
    }
    if (!s->order_by.empty() && Hit()) {
      s->order_by.clear();
      return;
    }
    if (s->limit && Hit()) {
      s->limit.reset();
      s->offset.reset();
      return;
    }
    if (s->offset && Hit()) {
      s->offset.reset();
      return;
    }
    for (size_t i = 0; i < s->group_by.size(); ++i) {
      if (Hit()) {
        s->group_by.erase(s->group_by.begin() + i);
        return;
      }
    }
    if (s->select_list.size() > 1) {
      for (size_t i = 0; i < s->select_list.size(); ++i) {
        if (Hit()) {
          s->select_list.erase(s->select_list.begin() + i);
          return;
        }
      }
    }
    for (auto& item : s->select_list) {
      MutateExpr(item.expr);
      if (applied_) return;
    }
    MutateExpr(s->where);
    if (applied_) return;
    MutateExpr(s->having);
    if (applied_) return;
    MutateFrom(s->from.get());
    if (applied_) return;
    for (auto& cte : s->ctes) {
      MutateSelect(cte.select.get());
      if (applied_) return;
    }
    MutateSelect(s->set_rhs.get());
  }

 private:
  bool Hit() {
    if (applied_) return false;
    if (counter_++ == target_) {
      applied_ = true;
      return true;
    }
    return false;
  }

  void MutateFrom(TableRef* t) {
    if (t == nullptr || applied_) return;
    switch (t->kind) {
      case TableRefKind::kBaseTable:
        break;
      case TableRefKind::kSubquery:
        MutateSelect(t->subquery.get());
        break;
      case TableRefKind::kJoin:
        MutateFrom(t->left.get());
        if (applied_) return;
        MutateFrom(t->right.get());
        if (applied_) return;
        MutateExpr(t->on_condition);
        break;
    }
  }

  void MutateExpr(ExprPtr& e) {
    if (!e || applied_) return;
    switch (e->kind) {
      case ExprKind::kAt: {
        if (Hit()) {
          // Collapse `m AT (...)` to the bare measure.
          e = std::move(e->left);
          return;
        }
        if (e->at_modifiers.size() > 1) {
          for (size_t i = 0; i < e->at_modifiers.size(); ++i) {
            if (Hit()) {
              e->at_modifiers.erase(e->at_modifiers.begin() + i);
              return;
            }
          }
        }
        MutateExpr(e->left);
        if (applied_) return;
        for (auto& mod : e->at_modifiers) {
          for (auto& d : mod.dims) {
            MutateExpr(d);
            if (applied_) return;
          }
          MutateExpr(mod.value);
          if (applied_) return;
          MutateExpr(mod.predicate);
          if (applied_) return;
        }
        break;
      }
      case ExprKind::kBinary: {
        if (Hit()) {
          e = std::move(e->left);
          return;
        }
        if (Hit()) {
          e = std::move(e->right);
          return;
        }
        MutateExpr(e->left);
        if (applied_) return;
        MutateExpr(e->right);
        break;
      }
      case ExprKind::kUnary: {
        if (Hit()) {
          e = std::move(e->left);
          return;
        }
        MutateExpr(e->left);
        break;
      }
      case ExprKind::kFuncCall: {
        if (e->args.size() == 1 && Hit()) {
          // AGGREGATE(m) -> m, SUM(x) -> x, ... The predicate re-runs the
          // oracle, so semantics-changing edits are kept only when the
          // failure survives them.
          e = std::move(e->args[0]);
          return;
        }
        for (auto& a : e->args) {
          MutateExpr(a);
          if (applied_) return;
        }
        MutateExpr(e->filter);
        break;
      }
      case ExprKind::kCase: {
        MutateExpr(e->case_operand);
        if (applied_) return;
        for (auto& [w, t] : e->when_clauses) {
          MutateExpr(w);
          if (applied_) return;
          MutateExpr(t);
          if (applied_) return;
        }
        MutateExpr(e->else_expr);
        break;
      }
      case ExprKind::kCast:
      case ExprKind::kIsNull:
      case ExprKind::kLike:
      case ExprKind::kBetween: {
        MutateExpr(e->left);
        if (applied_) return;
        MutateExpr(e->right);
        if (applied_) return;
        MutateExpr(e->between_low);
        if (applied_) return;
        MutateExpr(e->between_high);
        break;
      }
      case ExprKind::kInList: {
        MutateExpr(e->left);
        if (applied_) return;
        for (auto& i : e->in_list) {
          MutateExpr(i);
          if (applied_) return;
        }
        break;
      }
      case ExprKind::kInSubquery:
      case ExprKind::kExists:
      case ExprKind::kSubquery: {
        MutateExpr(e->left);
        if (applied_) return;
        MutateSelect(e->subquery.get());
        break;
      }
      default:
        break;
    }
  }

  int target_;
  int counter_ = 0;
  bool applied_ = false;
};

}  // namespace

std::vector<std::string> QuerySimplifications(const std::string& sql) {
  auto parsed = Parser::Parse(sql);
  if (!parsed.ok() || parsed.value()->kind != StmtKind::kSelect) return {};
  std::vector<std::string> out;
  for (int target = 0; target < 512; ++target) {
    SelectStmtPtr clone = parsed.value()->select->Clone();
    Mutator mutator(target);
    mutator.MutateSelect(clone.get());
    if (!mutator.applied()) break;
    out.push_back(Unparse(*clone));
  }
  return out;
}

CaseSpec Shrink(CaseSpec spec, const FailPredicate& still_fails,
                int max_predicate_calls, ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats* st = stats != nullptr ? stats : &local;
  *st = ShrinkStats{};

  auto budget_left = [&]() { return st->predicate_calls < max_predicate_calls; };
  // Accepts the candidate if the failure still reproduces under it.
  auto accept = [&](CaseSpec& cand) {
    if (!budget_left()) return false;
    ++st->predicate_calls;
    if (!still_fails(cand)) return false;
    ++st->accepted_edits;
    spec = std::move(cand);
    return true;
  };

  bool progress = true;
  while (progress && budget_left()) {
    progress = false;

    // Drop whole checks (keep at least one).
    for (size_t i = spec.checks.size(); i-- > 0 && spec.checks.size() > 1;) {
      CaseSpec cand = spec;
      cand.checks.erase(cand.checks.begin() + i);
      if (accept(cand)) progress = true;
    }

    // Drop queries inside differential checks.
    for (size_t c = 0; c < spec.checks.size(); ++c) {
      if (spec.checks[c].kind != CheckKind::kDifferential) continue;
      for (size_t q = spec.checks[c].queries.size();
           q-- > 0 && spec.checks[c].queries.size() > 1;) {
        CaseSpec cand = spec;
        cand.checks[c].queries.erase(cand.checks[c].queries.begin() + q);
        if (accept(cand)) progress = true;
      }
    }

    // Drop whole tables and setup statements.
    for (size_t t = spec.tables.size(); t-- > 0;) {
      CaseSpec cand = spec;
      cand.tables.erase(cand.tables.begin() + t);
      if (accept(cand)) progress = true;
    }
    for (size_t s = spec.setup.size(); s-- > 0;) {
      CaseSpec cand = spec;
      cand.setup.erase(cand.setup.begin() + s);
      if (accept(cand)) progress = true;
    }

    // ddmin-style row-chunk removal, large chunks first.
    for (size_t t = 0; t < spec.tables.size(); ++t) {
      size_t chunk = std::max<size_t>(1, spec.tables[t].rows.size() / 2);
      while (budget_left()) {
        size_t start = 0;
        while (start < spec.tables[t].rows.size() && budget_left()) {
          CaseSpec cand = spec;
          auto& rows = cand.tables[t].rows;
          size_t end = std::min(rows.size(), start + chunk);
          rows.erase(rows.begin() + start, rows.begin() + end);
          if (accept(cand)) {
            progress = true;  // same start now addresses the next chunk
          } else {
            start += chunk;
          }
        }
        if (chunk == 1) break;
        chunk /= 2;
      }
    }

    // Drop columns (cells come along).
    for (size_t t = 0; t < spec.tables.size(); ++t) {
      for (size_t c = spec.tables[t].columns.size();
           c-- > 0 && spec.tables[t].columns.size() > 1;) {
        CaseSpec cand = spec;
        cand.tables[t].columns.erase(cand.tables[t].columns.begin() + c);
        for (auto& row : cand.tables[t].rows) {
          if (c < row.size()) row.erase(row.begin() + c);
        }
        if (accept(cand)) progress = true;
      }
    }

    // AST-level query simplification, re-unparsed; greedy to fixpoint per
    // query.
    for (size_t c = 0; c < spec.checks.size() && budget_left(); ++c) {
      for (size_t q = 0; q < spec.checks[c].queries.size() && budget_left();
           ++q) {
        bool simplified = true;
        while (simplified && budget_left()) {
          simplified = false;
          for (const std::string& cand_sql :
               QuerySimplifications(spec.checks[c].queries[q])) {
            CaseSpec cand = spec;
            cand.checks[c].queries[q] = cand_sql;
            if (accept(cand)) {
              progress = true;
              simplified = true;
              break;
            }
            if (!budget_left()) break;
          }
        }
      }
    }
  }
  return spec;
}

}  // namespace testing
}  // namespace msql

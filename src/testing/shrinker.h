#ifndef MSQL_TESTING_SHRINKER_H_
#define MSQL_TESTING_SHRINKER_H_

#include <functional>

#include "testing/case_spec.h"

namespace msql {
namespace testing {

// Decides whether a mutated candidate still reproduces the failure being
// minimized (typically: re-run the oracle and check it still reports a
// discrepancy). The shrinker only keeps edits for which this returns true.
using FailPredicate = std::function<bool(const CaseSpec&)>;

struct ShrinkStats {
  int predicate_calls = 0;
  int accepted_edits = 0;
};

// Greedy delta-debugging minimizer. Repeatedly tries structural edits —
// drop checks, drop queries, drop whole tables, drop setup statements,
// ddmin-style row-chunk removal, drop columns, and AST-level query
// simplifications (remove AT modifiers, WHERE/HAVING/ORDER BY/LIMIT,
// GROUP BY items, select items, collapse binary expressions; re-unparsed
// via src/parser/unparser) — keeping any edit after which `still_fails`
// holds, until a fixpoint or `max_predicate_calls` evaluations.
//
// The input spec must satisfy `still_fails`; the result is a (usually much
// smaller) spec that still does.
CaseSpec Shrink(CaseSpec spec, const FailPredicate& still_fails,
                int max_predicate_calls = 500, ShrinkStats* stats = nullptr);

// The AST-level query simplification candidates for one SQL statement,
// each re-rendered to text with the unparser. Exposed for the shrinker's
// unit tests. Unparseable input yields an empty list.
std::vector<std::string> QuerySimplifications(const std::string& sql);

}  // namespace testing
}  // namespace msql

#endif  // MSQL_TESTING_SHRINKER_H_

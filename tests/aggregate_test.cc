// Integration tests for aggregation: GROUP BY, grouping sets (ROLLUP / CUBE
// / GROUPING SETS), GROUPING(), HAVING, DISTINCT and FILTER modifiers,
// statistical aggregates, MIN_BY/MAX_BY, and window functions.

#include <cmath>

#include "engine/engine.h"
#include "gtest/gtest.h"
#include "tests/paper_fixture.h"

namespace msql {
namespace {

class AggregateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(&db_, R"sql(
      CREATE TABLE sales (region VARCHAR, product VARCHAR, amount INTEGER,
                          saleDate DATE);
      INSERT INTO sales VALUES
        ('east', 'pen',    10, DATE '2024-01-05'),
        ('east', 'pen',    20, DATE '2024-02-05'),
        ('east', 'book',   30, DATE '2024-01-10'),
        ('west', 'pen',    40, DATE '2024-01-15'),
        ('west', 'book',   50, DATE '2024-03-01'),
        ('west', 'book',   60, DATE '2024-03-02'),
        ('west', NULL,      5, DATE '2024-04-01');
    )sql");
  }
  Engine db_;
};

TEST_F(AggregateTest, BasicAggregates) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT COUNT(*) AS n, COUNT(product) AS np, SUM(amount) AS s,
           AVG(amount) AS a, MIN(amount) AS mn, MAX(amount) AS mx
    FROM sales
  )sql");
  EXPECT_EQ(rs.Get(0, "n").int_val(), 7);
  EXPECT_EQ(rs.Get(0, "np").int_val(), 6);  // COUNT skips NULL
  EXPECT_EQ(rs.Get(0, "s").int_val(), 215);
  EXPECT_NEAR(rs.Get(0, "a").double_val(), 215.0 / 7, 1e-9);
  EXPECT_EQ(rs.Get(0, "mn").int_val(), 5);
  EXPECT_EQ(rs.Get(0, "mx").int_val(), 60);
}

TEST_F(AggregateTest, EmptyInputScalarAggregation) {
  ResultSet rs = MustQuery(
      &db_, "SELECT COUNT(*) AS n, SUM(amount) AS s FROM sales WHERE amount > 999");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.Get(0, "n").int_val(), 0);
  EXPECT_TRUE(rs.Get(0, "s").is_null());
}

TEST_F(AggregateTest, GroupByNullIsItsOwnGroup) {
  ResultSet rs = MustQuery(
      &db_, "SELECT product, COUNT(*) AS n FROM sales GROUP BY product");
  EXPECT_EQ(rs.num_rows(), 3u);  // pen, book, NULL
}

TEST_F(AggregateTest, GroupByExpression) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT MONTH(saleDate) AS m, SUM(amount) AS s
    FROM sales GROUP BY MONTH(saleDate) ORDER BY m
  )sql");
  ASSERT_EQ(rs.num_rows(), 4u);
  EXPECT_EQ(rs.Get(0, "m").int_val(), 1);
  EXPECT_EQ(rs.Get(0, "s").int_val(), 80);
}

TEST_F(AggregateTest, GroupByAliasAndOrdinal) {
  ResultSet by_alias = MustQuery(&db_, R"sql(
    SELECT MONTH(saleDate) AS m, SUM(amount) AS s FROM sales GROUP BY m ORDER BY m
  )sql");
  ResultSet by_ordinal = MustQuery(&db_, R"sql(
    SELECT MONTH(saleDate) AS m, SUM(amount) AS s FROM sales GROUP BY 1 ORDER BY 1
  )sql");
  ASSERT_EQ(by_alias.num_rows(), by_ordinal.num_rows());
  for (size_t i = 0; i < by_alias.num_rows(); ++i) {
    EXPECT_EQ(by_alias.Get(i, "s").int_val(), by_ordinal.Get(i, "s").int_val());
  }
}

TEST_F(AggregateTest, Having) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT region, SUM(amount) AS s FROM sales
    GROUP BY region HAVING SUM(amount) > 100
  )sql");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.Get(0, "region").str(), "west");
}

TEST_F(AggregateTest, DistinctAggregate) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT COUNT(DISTINCT region) AS r, COUNT(DISTINCT product) AS p,
           SUM(DISTINCT amount) AS s
    FROM sales
  )sql");
  EXPECT_EQ(rs.Get(0, "r").int_val(), 2);
  EXPECT_EQ(rs.Get(0, "p").int_val(), 2);
  EXPECT_EQ(rs.Get(0, "s").int_val(), 215);  // all amounts distinct
}

TEST_F(AggregateTest, FilterClause) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT SUM(amount) FILTER (WHERE region = 'east') AS east_total,
           COUNT(*) FILTER (WHERE amount >= 40) AS big
    FROM sales
  )sql");
  EXPECT_EQ(rs.Get(0, "east_total").int_val(), 60);
  EXPECT_EQ(rs.Get(0, "big").int_val(), 3);
}

TEST_F(AggregateTest, StddevVariance) {
  MustExecute(&db_, "CREATE TABLE v (x DOUBLE); "
                    "INSERT INTO v VALUES (2), (4), (4), (4), (5), (5), (7), (9)");
  ResultSet rs =
      MustQuery(&db_, "SELECT STDDEV(x) AS sd, VARIANCE(x) AS var FROM v");
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(rs.Get(0, "var").double_val(), 32.0 / 7, 1e-9);
  EXPECT_NEAR(rs.Get(0, "sd").double_val(), std::sqrt(32.0 / 7), 1e-9);
}

TEST_F(AggregateTest, MinByMaxBy) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT region,
           MAX_BY(product, amount) AS best,
           MIN_BY(product, amount) AS worst,
           MAX_BY(amount, saleDate) AS latest_amount
    FROM sales WHERE product IS NOT NULL
    GROUP BY region ORDER BY region
  )sql");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.Get(0, "best").str(), "book");   // east: 30
  EXPECT_EQ(rs.Get(0, "worst").str(), "pen");   // east: 10
  EXPECT_EQ(rs.Get(1, "best").str(), "book");   // west: 60
  EXPECT_EQ(rs.Get(1, "latest_amount").int_val(), 60);  // 2024-03-02
}

TEST_F(AggregateTest, Rollup) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT region, product, SUM(amount) AS s
    FROM sales WHERE product IS NOT NULL
    GROUP BY ROLLUP(region, product)
  )sql");
  // 4 leaf groups + 2 region subtotals + 1 grand total.
  EXPECT_EQ(rs.num_rows(), 7u);
  int64_t grand = -1;
  for (const Row& r : rs.rows()) {
    if (r[0].is_null() && r[1].is_null()) grand = r[2].int_val();
  }
  EXPECT_EQ(grand, 210);
}

TEST_F(AggregateTest, Cube) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT region, product, SUM(amount) AS s
    FROM sales WHERE product IS NOT NULL
    GROUP BY CUBE(region, product)
  )sql");
  // 4 leaves + 2 region + 2 product + 1 grand = 9.
  EXPECT_EQ(rs.num_rows(), 9u);
}

TEST_F(AggregateTest, GroupingSetsExplicit) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT region, product, SUM(amount) AS s
    FROM sales WHERE product IS NOT NULL
    GROUP BY GROUPING SETS ((region), (product), ())
  )sql");
  EXPECT_EQ(rs.num_rows(), 5u);  // 2 regions + 2 products + grand total
}

TEST_F(AggregateTest, GroupingFunction) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT region, GROUPING(region) AS g, SUM(amount) AS s
    FROM sales GROUP BY ROLLUP(region)
  )sql");
  ASSERT_EQ(rs.num_rows(), 3u);
  for (const Row& r : rs.rows()) {
    if (r[0].is_null()) {
      EXPECT_EQ(r[1].int_val(), 1);  // aggregated away
    } else {
      EXPECT_EQ(r[1].int_val(), 0);
    }
  }
}

TEST_F(AggregateTest, GroupingIdTwoArgs) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT region, product, GROUPING_ID(region, product) AS gid
    FROM sales WHERE product IS NOT NULL
    GROUP BY ROLLUP(region, product)
  )sql");
  // gid: 0 for leaves, 1 for region subtotal (product aggregated), 3 grand.
  int leaves = 0, subtotals = 0, grand = 0;
  for (const Row& r : rs.rows()) {
    switch (r[2].int_val()) {
      case 0: ++leaves; break;
      case 1: ++subtotals; break;
      case 3: ++grand; break;
      default: FAIL() << "unexpected grouping id " << r[2].int_val();
    }
  }
  EXPECT_EQ(leaves, 4);
  EXPECT_EQ(subtotals, 2);
  EXPECT_EQ(grand, 1);
}

TEST_F(AggregateTest, RollupPlusPlainKeyCrossProduct) {
  // GROUP BY a, ROLLUP(b): `a` appears in every grouping set.
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT region, product, SUM(amount) AS s
    FROM sales WHERE product IS NOT NULL
    GROUP BY region, ROLLUP(product)
  )sql");
  // 4 leaves + 2 per-region totals.
  EXPECT_EQ(rs.num_rows(), 6u);
}

TEST_F(AggregateTest, AggregateOfExpression) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT SUM(amount * 2) AS dbl, SUM(amount) * 2 AS dbl2 FROM sales
  )sql");
  EXPECT_EQ(rs.Get(0, "dbl").int_val(), 430);
  EXPECT_EQ(rs.Get(0, "dbl2").int_val(), 430);
}

TEST_F(AggregateTest, NestedAggregateIsAnError) {
  auto r = db_.Query("SELECT SUM(MAX(amount)) FROM sales");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kBind);
}

TEST_F(AggregateTest, NonGroupedColumnIsAnError) {
  auto r = db_.Query("SELECT region, product FROM sales GROUP BY region");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kBind);
}

TEST_F(AggregateTest, AggregateInWhereIsAnError) {
  auto r = db_.Query("SELECT region FROM sales WHERE SUM(amount) > 10");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kBind);
}

// ---------------------------------------------------------------------------
// Window functions
// ---------------------------------------------------------------------------

TEST_F(AggregateTest, WindowWholePartition) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT region, amount,
           SUM(amount) OVER (PARTITION BY region) AS total,
           amount * 1.0 / SUM(amount) OVER (PARTITION BY region) AS share
    FROM sales WHERE product IS NOT NULL
    ORDER BY region, amount
  )sql");
  ASSERT_EQ(rs.num_rows(), 6u);
  EXPECT_EQ(rs.Get(0, "total").int_val(), 60);   // east
  EXPECT_EQ(rs.Get(3, "total").int_val(), 150);  // west
  EXPECT_NEAR(rs.Get(0, "share").double_val(), 10.0 / 60, 1e-9);
}

TEST_F(AggregateTest, WindowRunningSum) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT amount, SUM(amount) OVER (PARTITION BY region ORDER BY saleDate) AS run
    FROM sales WHERE region = 'east'
    ORDER BY saleDate
  )sql");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.Get(0, "run").int_val(), 10);
  EXPECT_EQ(rs.Get(1, "run").int_val(), 40);  // 10 + 30 (Jan 10)
  EXPECT_EQ(rs.Get(2, "run").int_val(), 60);
}

TEST_F(AggregateTest, RowNumberAndRank) {
  MustExecute(&db_, "CREATE TABLE scores (name VARCHAR, pts INTEGER); "
                    "INSERT INTO scores VALUES ('a', 10), ('b', 20), "
                    "('c', 20), ('d', 30)");
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT name, ROW_NUMBER() OVER (ORDER BY pts DESC) AS rn,
           RANK() OVER (ORDER BY pts DESC) AS rk
    FROM scores ORDER BY rn
  )sql");
  ASSERT_EQ(rs.num_rows(), 4u);
  EXPECT_EQ(rs.Get(0, "rn").int_val(), 1);
  EXPECT_EQ(rs.Get(0, "rk").int_val(), 1);  // d, 30
  EXPECT_EQ(rs.Get(1, "rk").int_val(), 2);  // b or c, 20
  EXPECT_EQ(rs.Get(2, "rk").int_val(), 2);
  EXPECT_EQ(rs.Get(3, "rk").int_val(), 4);  // a, 10
}

TEST_F(AggregateTest, WindowOnlyFunctionNeedsOver) {
  auto r = db_.Query("SELECT ROW_NUMBER() FROM sales");
  EXPECT_FALSE(r.ok());
}

TEST_F(AggregateTest, WindowRequiresOrderForRank) {
  auto r = db_.Query("SELECT RANK() OVER (PARTITION BY region) FROM sales");
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace msql

// Tests for each row of paper table 3 (the AT context modifiers), modifier
// sequencing, and the CURRENT qualifier.

#include "engine/engine.h"
#include "gtest/gtest.h"
#include "tests/paper_fixture.h"

namespace msql {
namespace {

class AtModifierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LoadPaperData(&db_);
    MustExecute(&db_, R"sql(
      CREATE VIEW EO AS
      SELECT *, SUM(revenue) AS MEASURE r,
             (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE margin,
             YEAR(orderDate) AS orderYear
      FROM Orders
    )sql");
  }
  Engine db_;
};

// ALL with no arguments sets the evaluation context to TRUE: the measure is
// evaluated over its entire source table.
TEST_F(AtModifierTest, AllClearsEverything) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, r AT (ALL) AS total
    FROM EO WHERE custName = 'Alice' GROUP BY prodName
  )sql");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.Get(0, "total").int_val(), 25);  // whole Orders table
}

// ALL dim removes only that dimension's terms.
TEST_F(AtModifierTest, AllSingleDimension) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, orderYear, r,
           r AT (ALL orderYear) AS all_years,
           r AT (ALL prodName) AS all_products
    FROM EO GROUP BY prodName, orderYear
    ORDER BY prodName, orderYear
  )sql");
  for (const Row& row : rs.rows()) {
    if (row[0].str() == "Happy" && row[1].int_val() == 2023) {
      EXPECT_EQ(row[2].int_val(), 6);   // Happy 2023
      EXPECT_EQ(row[3].int_val(), 17);  // Happy all years
      EXPECT_EQ(row[4].int_val(), 14);  // all products in 2023: 6+5+3
    }
  }
}

// ALL with several dimensions.
TEST_F(AtModifierTest, AllMultipleDimensions) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, orderYear, r AT (ALL prodName orderYear) AS total
    FROM EO GROUP BY prodName, orderYear
  )sql");
  for (const Row& row : rs.rows()) {
    EXPECT_EQ(row[2].int_val(), 25);
  }
}

// ALL on a dimension that is not constrained is a no-op.
TEST_F(AtModifierTest, AllUnconstrainedDimensionIsNoOp) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, r, r AT (ALL custName) AS same
    FROM EO GROUP BY prodName ORDER BY prodName
  )sql");
  for (const Row& row : rs.rows()) {
    EXPECT_EQ(row[1].int_val(), row[2].int_val());
  }
}

// SET pins a dimension to a constant.
TEST_F(AtModifierTest, SetConstant) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, r AT (SET prodName = 'Acme') AS acme
    FROM EO GROUP BY prodName ORDER BY prodName
  )sql");
  for (const Row& row : rs.rows()) {
    EXPECT_EQ(row[1].int_val(), 5);
  }
}

// SET with CURRENT arithmetic (relative navigation).
TEST_F(AtModifierTest, SetWithCurrent) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT orderYear, r,
           r AT (SET orderYear = CURRENT orderYear - 1) AS prev
    FROM EO GROUP BY orderYear ORDER BY orderYear
  )sql");
  ASSERT_EQ(rs.num_rows(), 3u);  // 2022, 2023, 2024
  EXPECT_EQ(rs.Get(0, "r").int_val(), 4);
  EXPECT_TRUE(rs.Get(0, "prev").is_null());  // no 2021 rows -> SUM NULL
  EXPECT_EQ(rs.Get(1, "r").int_val(), 14);
  EXPECT_EQ(rs.Get(1, "prev").int_val(), 4);
  EXPECT_EQ(rs.Get(2, "r").int_val(), 7);
  EXPECT_EQ(rs.Get(2, "prev").int_val(), 14);
}

// SET adds a constraint even when the dimension was unconstrained.
TEST_F(AtModifierTest, SetAddsNewDimensionTerm) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, r AT (SET custName = 'Bob') AS bob_only
    FROM EO GROUP BY prodName ORDER BY prodName
  )sql");
  // Bob's orders per product: Acme 5, Happy 4, Whizz none.
  EXPECT_EQ(rs.Get(0, "bob_only").int_val(), 5);
  EXPECT_EQ(rs.Get(1, "bob_only").int_val(), 4);
  EXPECT_TRUE(rs.Get(2, "bob_only").is_null());
}

// CURRENT of an unconstrained dimension is NULL (paper section 3.5), so
// SET dim = CURRENT other - 1 yields a NULL-pinned dimension.
TEST_F(AtModifierTest, CurrentOfUnconstrainedDimensionIsNull) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, r AT (SET orderYear = CURRENT orderYear - 1) AS prev
    FROM EO GROUP BY prodName ORDER BY prodName
  )sql");
  // orderYear is not a group key; CURRENT orderYear is NULL; NULL - 1 is
  // NULL; no row has orderYear NULL -> empty SUM -> NULL.
  for (const Row& row : rs.rows()) {
    EXPECT_TRUE(row[1].is_null());
  }
}

// VISIBLE restricts to the rows admitted by the query's WHERE clause.
TEST_F(AtModifierTest, VisibleAddsQueryFilters) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, r AS unfiltered, r AT (VISIBLE) AS viz
    FROM EO WHERE orderYear = 2023 GROUP BY prodName ORDER BY prodName
  )sql");
  // Happy: all-years 17 vs visible (2023) 6.
  for (const Row& row : rs.rows()) {
    if (row[0].str() == "Happy") {
      EXPECT_EQ(row[1].int_val(), 17);
      EXPECT_EQ(row[2].int_val(), 6);
    }
  }
}

// AGGREGATE(m) is EVAL(m AT (VISIBLE)).
TEST_F(AtModifierTest, AggregateEqualsVisible) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, AGGREGATE(r) AS a, r AT (VISIBLE) AS v
    FROM EO WHERE custName <> 'Bob' GROUP BY prodName ORDER BY prodName
  )sql");
  for (const Row& row : rs.rows()) {
    EXPECT_TRUE(Value::NotDistinct(row[1], row[2]));
  }
}

// WHERE replaces the context with an arbitrary predicate.
TEST_F(AtModifierTest, WhereModifierReplacesContext) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, r AT (WHERE revenue >= 5) AS big_orders
    FROM EO GROUP BY prodName ORDER BY prodName
  )sql");
  // Orders with revenue >= 5: 6 + 5 + 7 = 18, same for every group (the
  // group term is replaced).
  for (const Row& row : rs.rows()) {
    EXPECT_EQ(row[1].int_val(), 18);
  }
}

// WHERE with a correlation to the outer row (listing 12 query 4 style).
TEST_F(AtModifierTest, WhereModifierWithCorrelation) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT o.prodName, o.revenue,
           o.r AT (WHERE prodName = o.prodName) AS product_total
    FROM EO AS o
    ORDER BY o.prodName, o.revenue
  )sql");
  ASSERT_EQ(rs.num_rows(), 5u);
  for (const Row& row : rs.rows()) {
    int64_t expected = row[0].str() == "Acme" ? 5
                       : row[0].str() == "Happy" ? 17
                                                 : 3;
    EXPECT_EQ(row[2].int_val(), expected) << row[0].str();
  }
}

// Modifiers apply in sequence: `AT (m1 m2)` applies m1 then m2, equivalent
// to (cse AT (m2)) AT (m1) per section 3.5.
TEST_F(AtModifierTest, ModifierSequencing) {
  ResultSet combined = MustQuery(&db_, R"sql(
    SELECT prodName, r AT (ALL SET prodName = 'Happy') AS v
    FROM EO GROUP BY prodName ORDER BY prodName
  )sql");
  ResultSet nested = MustQuery(&db_, R"sql(
    SELECT prodName, r AT (SET prodName = 'Happy') AT (ALL) AS v
    FROM EO GROUP BY prodName ORDER BY prodName
  )sql");
  for (size_t i = 0; i < combined.num_rows(); ++i) {
    EXPECT_EQ(combined.Get(i, "v").int_val(), 17);
    EXPECT_EQ(nested.Get(i, "v").int_val(), 17);
  }
  // Reversed order: SET then ALL clears the SET again.
  ResultSet cleared = MustQuery(&db_, R"sql(
    SELECT prodName, r AT (SET prodName = 'Happy' ALL) AS v
    FROM EO GROUP BY prodName ORDER BY prodName
  )sql");
  for (size_t i = 0; i < cleared.num_rows(); ++i) {
    EXPECT_EQ(cleared.Get(i, "v").int_val(), 25);
  }
}

// An ad hoc dimension expression: grouping by an expression of a dimension
// and removing it with ALL using the same expression.
TEST_F(AtModifierTest, AdHocDimensionExpression) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT YEAR(orderDate) AS y, r, r AT (ALL YEAR(orderDate)) AS total
    FROM EO GROUP BY YEAR(orderDate) ORDER BY y
  )sql");
  for (const Row& row : rs.rows()) {
    EXPECT_EQ(row[2].int_val(), 25);
  }
}

// SET on an ad hoc dimension expression.
TEST_F(AtModifierTest, SetOnAdHocExpression) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT YEAR(orderDate) AS y,
           r AT (SET YEAR(orderDate) = 2023) AS y2023
    FROM EO GROUP BY YEAR(orderDate) ORDER BY y
  )sql");
  for (const Row& row : rs.rows()) {
    EXPECT_EQ(row[1].int_val(), 14);
  }
}

// The WHERE clause of the defining query is baked into the measure and
// cannot be removed, not even by ALL (paper section 3.5 note).
TEST_F(AtModifierTest, BakedInDefinitionFilterSurvivesAll) {
  MustExecute(&db_, R"sql(
    CREATE VIEW RecentOrders AS
    SELECT *, SUM(revenue) AS MEASURE r
    FROM Orders WHERE YEAR(orderDate) >= 2023
  )sql");
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, r AT (ALL) AS total FROM RecentOrders GROUP BY prodName
  )sql");
  for (const Row& row : rs.rows()) {
    EXPECT_EQ(row[1].int_val(), 21);  // 25 minus Bob's 2022 Happy order
  }
}

// AT on a non-measure expression is a bind error.
TEST_F(AtModifierTest, AtRequiresMeasure) {
  auto r = db_.Query("SELECT revenue AT (ALL) FROM EO");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kBind);
}

// AGGREGATE on a non-measure is a bind error.
TEST_F(AtModifierTest, AggregateRequiresMeasure) {
  auto r = db_.Query("SELECT AGGREGATE(revenue) FROM EO GROUP BY prodName");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kBind);
}

// CURRENT outside AT is a bind error.
TEST_F(AtModifierTest, CurrentOutsideAtIsError) {
  auto r = db_.Query("SELECT CURRENT prodName FROM EO");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kBind);
}

// Unknown dimensions inside AT are reported.
TEST_F(AtModifierTest, UnknownDimensionIsError) {
  auto r = db_.Query("SELECT r AT (ALL nosuchdim) FROM EO GROUP BY prodName");
  EXPECT_FALSE(r.ok());
}

// AT applies to every measure inside a compound expression.
TEST_F(AtModifierTest, AtOverCompoundExpression) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, (r * 1.0) AT (ALL) AS scaled_total
    FROM EO GROUP BY prodName
  )sql");
  for (const Row& row : rs.rows()) {
    EXPECT_DOUBLE_EQ(row[1].double_val(), 25.0);
  }
}

// Measures referenced per-row (no GROUP BY) take a fully pinned context.
TEST_F(AtModifierTest, PerRowDefaultContext) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, revenue, r AS row_measure
    FROM EO WHERE prodName = 'Happy' ORDER BY revenue
  )sql");
  ASSERT_EQ(rs.num_rows(), 3u);
  // Every dimension pinned: each row's context selects exactly the source
  // rows identical to it, i.e. its own revenue.
  for (size_t i = 0; i < rs.num_rows(); ++i) {
    EXPECT_EQ(rs.Get(i, "row_measure").int_val(),
              rs.Get(i, "revenue").int_val());
  }
}

// HAVING can use measures.
TEST_F(AtModifierTest, MeasureInHaving) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName FROM EO
    GROUP BY prodName HAVING AGGREGATE(r) > 5
    ORDER BY prodName
  )sql");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.Get(0, "prodName").str(), "Happy");
}

// ORDER BY can use measures.
TEST_F(AtModifierTest, MeasureInOrderBy) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, AGGREGATE(r) AS total FROM EO
    GROUP BY prodName ORDER BY AGGREGATE(r) DESC
  )sql");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.Get(0, "prodName").str(), "Happy");
  EXPECT_EQ(rs.Get(2, "prodName").str(), "Whizz");
}

}  // namespace
}  // namespace msql

// Tests for name resolution: qualifier matching, scope nesting, correlation
// depths, select-alias rules, USING disambiguation, and view isolation.

#include "engine/engine.h"
#include "gtest/gtest.h"
#include "tests/paper_fixture.h"

namespace msql {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(&db_, R"sql(
      CREATE TABLE t (a INTEGER, b INTEGER);
      INSERT INTO t VALUES (1, 10), (2, 20);
      CREATE TABLE s (a INTEGER, c INTEGER);
      INSERT INTO s VALUES (1, 100), (3, 300);
    )sql");
  }
  Engine db_;
};

TEST_F(BinderTest, QualifiedAndUnqualifiedNames) {
  ResultSet rs = MustQuery(&db_, "SELECT t.a, a, b FROM t ORDER BY a");
  EXPECT_EQ(rs.Get(0, 0).int_val(), 1);
  EXPECT_EQ(rs.Get(0, 1).int_val(), 1);
}

TEST_F(BinderTest, AliasHidesTableName) {
  // Once aliased, the original table name no longer qualifies columns.
  auto r = db_.Query("SELECT t.a FROM t AS x");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(MustQuery(&db_, "SELECT x.a FROM t AS x").num_rows() > 0);
}

TEST_F(BinderTest, CaseInsensitiveNames) {
  ResultSet rs = MustQuery(&db_, "SELECT A, T.B FROM T ORDER BY a");
  EXPECT_EQ(rs.num_rows(), 2u);
}

TEST_F(BinderTest, AmbiguousUnqualifiedAcrossJoin) {
  auto r = db_.Query("SELECT a FROM t JOIN s ON t.a = s.a");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("ambiguous"), std::string::npos);
}

TEST_F(BinderTest, UsingColumnIsNotAmbiguous) {
  ResultSet rs = MustQuery(&db_, "SELECT a, b, c FROM t JOIN s USING (a)");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.Get(0, "a").int_val(), 1);
}

TEST_F(BinderTest, InnerScopeShadowsOuter) {
  // The subquery's own `a` (from s) shadows the outer t.a.
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT t.a, (SELECT MAX(a) FROM s) AS inner_max FROM t ORDER BY t.a
  )sql");
  EXPECT_EQ(rs.Get(0, "inner_max").int_val(), 3);
}

TEST_F(BinderTest, CorrelationReachesTwoLevels) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT t.a,
           (SELECT (SELECT MAX(s.c) FROM s WHERE s.a = t.a)) AS deep
    FROM t ORDER BY t.a
  )sql");
  EXPECT_EQ(rs.Get(0, "deep").int_val(), 100);
  EXPECT_TRUE(rs.Get(1, "deep").is_null());
}

TEST_F(BinderTest, FromSubqueryIsNotLateral) {
  // A derived table cannot reference a sibling FROM item.
  auto r = db_.Query(
      "SELECT * FROM t, (SELECT t.a + 1 AS y FROM s) AS sub");
  EXPECT_FALSE(r.ok());
}

TEST_F(BinderTest, SelectAliasNotVisibleInWhere) {
  // SQL: WHERE cannot see select aliases.
  auto r = db_.Query("SELECT a + 1 AS a1 FROM t WHERE a1 > 1");
  EXPECT_FALSE(r.ok());
}

TEST_F(BinderTest, SelectAliasVisibleInGroupByOrderBy) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT a % 2 AS parity, COUNT(*) AS n FROM t
    GROUP BY parity ORDER BY parity
  )sql");
  EXPECT_EQ(rs.num_rows(), 2u);
}

TEST_F(BinderTest, ColumnPreferredOverAliasInGroupBy) {
  // `b` names both a real column and a select alias; SQL resolves GROUP BY
  // to the real column, so the ungrouped `a` in the select list errors.
  auto r = db_.Query("SELECT a AS b, COUNT(*) AS n FROM t GROUP BY b");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("GROUP BY"), std::string::npos);
  // With no column collision, the alias resolves.
  ResultSet rs = MustQuery(
      &db_, "SELECT a AS k, COUNT(*) AS n FROM t GROUP BY k ORDER BY k");
  EXPECT_EQ(rs.num_rows(), 2u);
}

TEST_F(BinderTest, DuplicateOutputNamesAllowed) {
  // SQL allows duplicate output column names.
  ResultSet rs = MustQuery(&db_, "SELECT a, a FROM t");
  EXPECT_EQ(rs.num_columns(), 2u);
}

TEST_F(BinderTest, ViewsDoNotSeeQueryScope) {
  MustExecute(&db_, "CREATE VIEW v AS SELECT a * 2 AS a2 FROM t");
  // The view's body resolves against its own scope only.
  ResultSet rs = MustQuery(&db_,
      "SELECT s.c, v.a2 FROM s JOIN v ON s.a * 2 = v.a2");
  EXPECT_EQ(rs.num_rows(), 1u);
}

TEST_F(BinderTest, CteShadowsTable) {
  ResultSet rs = MustQuery(&db_, R"sql(
    WITH t AS (SELECT 99 AS a)
    SELECT a FROM t
  )sql");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.Get(0, "a").int_val(), 99);
}

TEST_F(BinderTest, NestedCtesSeeEarlierOnes) {
  ResultSet rs = MustQuery(&db_, R"sql(
    WITH one AS (SELECT 1 AS x),
         two AS (SELECT x + 1 AS y FROM one)
    SELECT y FROM two
  )sql");
  EXPECT_EQ(rs.Get(0, "y").int_val(), 2);
}

TEST_F(BinderTest, TypeMismatchComparisonsRejected) {
  EXPECT_FALSE(db_.Query("SELECT a + 'x' FROM t").ok());
  EXPECT_FALSE(db_.Query("SELECT YEAR(a) FROM t").ok());
  EXPECT_FALSE(db_.Query("SELECT SUM(CAST(a AS VARCHAR)) FROM t").ok());
}

TEST_F(BinderTest, StarExpansionWithQualifier) {
  ResultSet rs = MustQuery(&db_, "SELECT s.* FROM t JOIN s USING (a)");
  EXPECT_EQ(rs.num_columns(), 2u);  // a, c
  auto r = db_.Query("SELECT z.* FROM t");
  EXPECT_FALSE(r.ok());
}

TEST_F(BinderTest, MeasureScopeFollowsAlias) {
  MustExecute(&db_,
              "CREATE VIEW mv AS SELECT *, SUM(b) AS MEASURE m FROM t");
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT x.a, AGGREGATE(x.m) AS v FROM mv AS x GROUP BY x.a ORDER BY x.a
  )sql");
  EXPECT_EQ(rs.Get(0, "v").int_val(), 10);
  // Unqualified also works.
  ResultSet rs2 = MustQuery(&db_, R"sql(
    SELECT a, AGGREGATE(m) AS v FROM mv AS x GROUP BY a ORDER BY a
  )sql");
  EXPECT_EQ(rs2.Get(1, "v").int_val(), 20);
}

TEST_F(BinderTest, HelpfulErrorMessages) {
  auto missing = db_.Query("SELECT nothere FROM t");
  EXPECT_NE(missing.status().message().find("nothere"), std::string::npos);
  auto unk_fn = db_.Query("SELECT FROB(a) FROM t");
  EXPECT_NE(unk_fn.status().message().find("FROB"), std::string::npos);
  auto not_grouped = db_.Query("SELECT a, b, SUM(b) FROM t GROUP BY a");
  EXPECT_NE(not_grouped.status().message().find("GROUP BY"),
            std::string::npos);
}

}  // namespace
}  // namespace msql

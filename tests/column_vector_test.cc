// Unit tests for the columnar batch layer: typed column vectors, validity
// bitmaps, the arena allocator and its guard-charged accounting.

#include "exec/column_vector.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/query_guard.h"
#include "common/value.h"
#include "gtest/gtest.h"

namespace msql {
namespace {

std::shared_ptr<Arena> NewArena() { return std::make_shared<Arena>(); }

void ExpectSameValue(const Value& a, const Value& b, const std::string& where) {
  EXPECT_TRUE(Value::NotDistinct(a, b))
      << where << ": " << a.ToString() << " vs " << b.ToString();
  if (!a.is_null()) {
    EXPECT_EQ(static_cast<int>(a.kind()), static_cast<int>(b.kind()))
        << where << ": kind drifted through the columnar round-trip";
  }
}

TEST(ColumnVectorTest, RoundTripAllKindsWithNulls) {
  // One column per TypeKind, NULLs sprinkled into each, duplicate strings to
  // exercise dictionary encoding, plus an all-NULL column.
  std::vector<Row> rows;
  const char* names[] = {"Acme", "Happy", "Acme", "Whizz", "Happy"};
  for (int i = 0; i < 500; ++i) {
    Row r;
    r.push_back(i % 7 == 0 ? Value::Null() : Value::Int(i - 250));
    r.push_back(i % 5 == 0 ? Value::Null() : Value::Double(i * 0.25));
    r.push_back(i % 3 == 0 ? Value::Null() : Value::Bool(i % 2 == 0));
    r.push_back(i % 11 == 0 ? Value::Null() : Value::Date(i));
    r.push_back(i % 13 == 0 ? Value::Null() : Value::String(names[i % 5]));
    r.push_back(Value::Null());
    rows.push_back(std::move(r));
  }

  auto built = ColumnarizeRows(6, rows, NewArena());
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  std::shared_ptr<const ColumnarRelation> rel = built.take();
  ASSERT_NE(rel, nullptr);
  ASSERT_TRUE(rel->Complete());
  EXPECT_EQ(rel->num_rows, 500);
  EXPECT_EQ(rel->cols.size(), 6u);
  EXPECT_EQ(rel->batches.size(), static_cast<size_t>(NumBatches(500)));

  // Per-column kinds and dictionary dedup.
  EXPECT_EQ(rel->cols[0]->kind, TypeKind::kInt64);
  EXPECT_EQ(rel->cols[1]->kind, TypeKind::kDouble);
  EXPECT_EQ(rel->cols[2]->kind, TypeKind::kBool);
  EXPECT_EQ(rel->cols[3]->kind, TypeKind::kDate);
  EXPECT_EQ(rel->cols[4]->kind, TypeKind::kString);
  EXPECT_EQ(rel->cols[5]->kind, TypeKind::kNull);
  ASSERT_NE(rel->cols[4]->dict, nullptr);
  EXPECT_TRUE(rel->cols[4]->dict_unique);
  EXPECT_EQ(rel->cols[4]->dict->size(), 3u);  // Acme, Happy, Whizz

  // At(i) reconstructs every original value; the all-NULL column reports
  // every row invalid.
  for (int64_t i = 0; i < 500; ++i) {
    for (size_t c = 0; c < 6; ++c) {
      ExpectSameValue(rows[i][c], rel->cols[c]->At(i),
                      "row " + std::to_string(i) + " col " + std::to_string(c));
      EXPECT_EQ(rel->cols[c]->IsValid(i), !rows[i][c].is_null());
    }
  }

  // MaterializeRowsDense is the exact inverse.
  std::vector<Row> back = MaterializeRowsDense(*rel);
  ASSERT_EQ(back.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    ASSERT_EQ(back[i].size(), rows[i].size());
    for (size_t c = 0; c < rows[i].size(); ++c) {
      ExpectSameValue(rows[i][c], back[i][c],
                      "materialized row " + std::to_string(i));
    }
  }
}

TEST(ColumnVectorTest, BitmapEdgesAtWordAndBatchBoundaries) {
  // Sizes straddling the 64-bit bitmap words and the 1024-row batch size:
  // tail bits past `length` must never read as valid rows.
  for (int64_t n : {int64_t{1}, int64_t{63}, int64_t{64}, int64_t{65},
                    int64_t{1023}, int64_t{1024}, int64_t{1025}}) {
    std::vector<Row> rows;
    for (int64_t i = 0; i < n; ++i) {
      Row r;
      r.push_back(i % 3 == 0 ? Value::Null() : Value::Int(i));
      rows.push_back(std::move(r));
    }
    auto built = ColumnarizeRows(1, rows, NewArena());
    ASSERT_TRUE(built.ok()) << "n=" << n;
    auto rel = built.take();
    ASSERT_TRUE(rel->Complete()) << "n=" << n;
    const ColumnVector& c = *rel->cols[0];
    ASSERT_EQ(c.length, n);
    ASSERT_NE(c.valid, nullptr) << "n=" << n;
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(c.IsValid(i), i % 3 != 0) << "n=" << n << " i=" << i;
      ExpectSameValue(rows[i][0], c.At(i), "n=" + std::to_string(n));
    }
    // NULL payload slots stay zero-filled (full-width kernels rely on it).
    // n=1 holds only NULLs, so the column is kNull and carries no payload.
    if (c.kind != TypeKind::kNull) {
      ASSERT_NE(c.ints, nullptr) << "n=" << n;
      for (int64_t i = 0; i < n; i += 3) {
        EXPECT_EQ(c.ints[i], 0) << "n=" << n << " i=" << i;
      }
    }
    EXPECT_EQ(rel->batches.size(), static_cast<size_t>(NumBatches(n)));
    int64_t covered = 0;
    for (const RowBatch& b : rel->batches) {
      EXPECT_EQ(b.offset, covered);
      EXPECT_GT(b.length, 0);
      EXPECT_LE(b.length, kRowsPerBatch);
      covered += b.length;
    }
    EXPECT_EQ(covered, n);
  }
}

TEST(ColumnVectorTest, AllValidColumnDropsTheBitmap) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < 100; ++i) rows.push_back(Row{Value::Int(i)});
  auto built = ColumnarizeRows(1, rows, NewArena());
  ASSERT_TRUE(built.ok());
  auto rel = built.take();
  EXPECT_EQ(rel->cols[0]->valid, nullptr);
  for (int64_t i = 0; i < 100; ++i) EXPECT_TRUE(rel->cols[0]->IsValid(i));
}

TEST(ColumnVectorTest, MixedKindColumnStaysRowMajor) {
  std::vector<Row> rows;
  rows.push_back(Row{Value::Int(1), Value::Int(10)});
  rows.push_back(Row{Value::String("x"), Value::Int(20)});
  auto built = ColumnarizeRows(2, rows, NewArena());
  ASSERT_TRUE(built.ok());
  auto rel = built.take();
  EXPECT_EQ(rel->cols[0], nullptr);  // INT then STRING: no single kind
  ASSERT_NE(rel->cols[1], nullptr);
  EXPECT_FALSE(rel->Complete());
}

TEST(ColumnVectorTest, DictionaryDegradesToInlinePastTheCodeLimit) {
  // More distinct strings than kMaxDictCodes: the builder stops deduping and
  // appends inline. Values still round-trip; codes are no longer comparable.
  const int64_t n = ColumnBuilder::kMaxDictCodes + 100;
  std::vector<Row> rows;
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back(Row{Value::String("s" + std::to_string(i))});
  }
  auto built = ColumnarizeRows(1, rows, NewArena());
  ASSERT_TRUE(built.ok());
  auto rel = built.take();
  const ColumnVector& c = *rel->cols[0];
  EXPECT_FALSE(c.dict_unique);
  for (int64_t i = 0; i < n; i += 997) {
    ExpectSameValue(rows[i][0], c.At(i), "degraded dict row");
  }
  ExpectSameValue(rows[n - 1][0], c.At(n - 1), "degraded dict last row");
}

TEST(ColumnVectorTest, GatherSharesTheDictionaryAndKeepsNulls) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < 200; ++i) {
    rows.push_back(
        Row{i % 4 == 0 ? Value::Null()
                       : Value::String(i % 2 == 0 ? "even" : "odd")});
  }
  auto built = ColumnarizeRows(1, rows, NewArena());
  ASSERT_TRUE(built.ok());
  auto rel = built.take();
  std::vector<int64_t> sel = {0, 3, 7, 100, 199, 3};  // dups allowed
  auto gathered = GatherColumn(*rel->cols[0], sel, NewArena());
  ASSERT_TRUE(gathered.ok());
  ColumnPtr g = gathered.take();
  ASSERT_EQ(g->length, static_cast<int64_t>(sel.size()));
  EXPECT_EQ(g->dict, rel->cols[0]->dict);  // shared, not copied
  for (size_t i = 0; i < sel.size(); ++i) {
    ExpectSameValue(rows[sel[i]][0], g->At(i), "gathered row");
  }
}

TEST(ArenaTest, ResetKeepsTheLargestBlockForReuse) {
  Arena arena;
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  void* p = arena.Allocate(1000);
  ASSERT_NE(p, nullptr);
  const uint64_t reserved = arena.bytes_reserved();
  EXPECT_GE(reserved, Arena::kMinBlockBytes);

  // Fill past the first block so a second one is reserved.
  while (arena.bytes_reserved() == reserved) {
    ASSERT_NE(arena.Allocate(4096), nullptr);
  }
  EXPECT_GT(arena.bytes_reserved(), reserved);

  // Reset keeps only the largest block; refilling it reserves nothing new.
  arena.Reset();
  const uint64_t after_reset = arena.bytes_reserved();
  EXPECT_LE(after_reset, arena.bytes_reserved());
  void* q = arena.Allocate(1000);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(arena.bytes_reserved(), after_reset);
  EXPECT_TRUE(arena.status().ok());
}

TEST(ArenaTest, AlignmentAndZeroSizedRequests) {
  Arena arena;
  for (size_t align : {size_t{1}, size_t{8}, size_t{16}, size_t{64}}) {
    void* p = arena.Allocate(3, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u);
  }
  EXPECT_NE(arena.Allocate(0), nullptr);
}

TEST(ArenaTest, GuardChargeFailurePoisonsTheArenaMidBuild) {
  // Budget below a single arena block: the first block charge is rejected,
  // the arena is poisoned (sticky), and allocation keeps returning nullptr.
  QueryGuard guard;
  guard.Arm(/*timeout_ms=*/0, /*max_memory_bytes=*/1024,
            /*max_result_rows=*/0, nullptr, nullptr);
  Arena arena(&guard);
  EXPECT_EQ(arena.Allocate(100), nullptr);
  EXPECT_EQ(arena.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(arena.Allocate(100), nullptr);  // sticky
  EXPECT_EQ(arena.status().code(), ErrorCode::kResourceExhausted);
}

TEST(ArenaTest, GuardChargeFailureSurfacesThroughColumnBuild) {
  // Budget admits the first block(s) but not the whole build: ColumnarizeRows
  // must abort with the guard's kResourceExhausted, not return a truncated
  // relation.
  QueryGuard guard;
  guard.Arm(/*timeout_ms=*/0, /*max_memory_bytes=*/2 * Arena::kMinBlockBytes,
            /*max_result_rows=*/0, nullptr, nullptr);
  auto arena = std::make_shared<Arena>(&guard);
  ASSERT_NE(arena->Allocate(16), nullptr);  // first block fits the budget

  std::vector<Row> rows;
  for (int64_t i = 0; i < 200000; ++i) {
    rows.push_back(Row{Value::Int(i), Value::Double(i * 0.5)});
  }
  auto built = ColumnarizeRows(2, rows, arena);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(arena->status().code(), ErrorCode::kResourceExhausted);
}

TEST(ColumnVectorTest, BuilderReportsGuardExhaustionMidAppend) {
  QueryGuard guard;
  guard.Arm(/*timeout_ms=*/0, /*max_memory_bytes=*/Arena::kMinBlockBytes,
            /*max_result_rows=*/0, nullptr, nullptr);
  auto arena = std::make_shared<Arena>(&guard);
  // Capacity large enough that the payload array alone busts the budget.
  ColumnBuilder builder(arena, /*capacity=*/1 << 20);
  bool ok = true;
  for (int64_t i = 0; i < 10 && ok; ++i) ok = builder.Append(Value::Int(i));
  EXPECT_FALSE(ok);
  EXPECT_EQ(builder.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(builder.Finish(), nullptr);
}

}  // namespace
}  // namespace msql

// Tests for paper section 5.4 (composability): measures referencing sibling
// measures, measures over tables with measures, and deep nesting with the
// closure property.

#include "engine/engine.h"
#include "gtest/gtest.h"
#include "tests/paper_fixture.h"

namespace msql {
namespace {

class CompositionTest : public ::testing::Test {
 protected:
  void SetUp() override { LoadPaperData(&db_); }
  Engine db_;
};

// A measure defined in terms of other measures of the same SELECT.
TEST_F(CompositionTest, PeerMeasureReference) {
  MustExecute(&db_, R"sql(
    CREATE VIEW V AS SELECT *,
      SUM(revenue) AS MEASURE rev,
      SUM(cost) AS MEASURE cst,
      (rev - cst) / rev AS MEASURE margin
    FROM Orders
  )sql");
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, AGGREGATE(margin) AS m FROM V GROUP BY prodName
    ORDER BY prodName
  )sql");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_NEAR(rs.Get(0, "m").double_val(), 0.60, 1e-9);
  EXPECT_NEAR(rs.Get(1, "m").double_val(), 8.0 / 17, 1e-9);
}

// Peer chains: a measure using a measure that itself uses a measure.
TEST_F(CompositionTest, PeerChain) {
  MustExecute(&db_, R"sql(
    CREATE VIEW V AS SELECT *,
      SUM(revenue) AS MEASURE rev,
      rev * 2 AS MEASURE rev2,
      rev2 + rev AS MEASURE rev3
    FROM Orders
  )sql");
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, AGGREGATE(rev3) AS r3 FROM V GROUP BY prodName
    ORDER BY prodName
  )sql");
  EXPECT_EQ(rs.Get(0, "r3").int_val(), 15);  // Acme: 5 * 3
  EXPECT_EQ(rs.Get(1, "r3").int_val(), 51);  // Happy: 17 * 3
}

// A measure defined over a table that already has measures (section 5.4's
// "one step at a time" semantics).
TEST_F(CompositionTest, MeasureOverMeasureTable) {
  MustExecute(&db_, R"sql(
    CREATE VIEW Level1 AS
      SELECT *, SUM(revenue) AS MEASURE rev FROM Orders;
    CREATE VIEW Level2 AS
      SELECT *, rev * 10 AS MEASURE rev10 FROM Level1;
  )sql");
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, AGGREGATE(rev10) AS r FROM Level2 GROUP BY prodName
    ORDER BY prodName
  )sql");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.Get(0, "r").int_val(), 50);
  EXPECT_EQ(rs.Get(1, "r").int_val(), 170);
  EXPECT_EQ(rs.Get(2, "r").int_val(), 30);
}

// Both the inherited measure and a new one are usable side by side.
TEST_F(CompositionTest, InheritedAndNewMeasures) {
  MustExecute(&db_, R"sql(
    CREATE VIEW Level1 AS
      SELECT *, SUM(revenue) AS MEASURE rev FROM Orders;
    CREATE VIEW Level2 AS
      SELECT *, COUNT(*) AS MEASURE n FROM Level1;
  )sql");
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, AGGREGATE(rev) AS r, AGGREGATE(n) AS n
    FROM Level2 GROUP BY prodName ORDER BY prodName
  )sql");
  EXPECT_EQ(rs.Get(1, "r").int_val(), 17);
  EXPECT_EQ(rs.Get(1, "n").int_val(), 3);
}

// Nesting through three query levels with filters in between: each level's
// measure is consumed by the next.
TEST_F(CompositionTest, DeepNestingWithIntermediateFilters) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, AGGREGATE(rev) AS visible_rev, rev AT (ALL prodName) AS all_rev
    FROM (
      SELECT * FROM (
        SELECT *, SUM(revenue) AS MEASURE rev FROM Orders
      ) AS inner1
      WHERE custName <> 'Celia'
    ) AS inner2
    GROUP BY prodName ORDER BY prodName
  )sql");
  ASSERT_EQ(rs.num_rows(), 2u);  // Whizz (Celia only) disappears
  // visible: Acme 5, Happy 17 (WHERE custName... wait Celia only bought
  // Whizz, so Happy keeps all three orders).
  EXPECT_EQ(rs.Get(0, "visible_rev").int_val(), 5);
  EXPECT_EQ(rs.Get(1, "visible_rev").int_val(), 17);
  // The bare measure with ALL prodName still sees the full source: 25.
  EXPECT_EQ(rs.Get(0, "all_rev").int_val(), 25);
}

// A query over a measure view is itself a table with measures usable in a
// further outer query (closure).
TEST_F(CompositionTest, ClosureThroughProjection) {
  MustExecute(&db_, R"sql(
    CREATE VIEW V AS SELECT *, SUM(revenue) AS MEASURE rev FROM Orders;
    CREATE VIEW Narrow AS SELECT prodName, rev FROM V;
  )sql");
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, AGGREGATE(rev) AS r FROM Narrow GROUP BY prodName
    ORDER BY prodName
  )sql");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.Get(1, "r").int_val(), 17);
}

// Narrowing hides dimensions: after projecting prodName away, it can no
// longer constrain the measure, but the measure still evaluates.
TEST_F(CompositionTest, NarrowingHidesDimensions) {
  MustExecute(&db_, R"sql(
    CREATE VIEW V AS SELECT *, SUM(revenue) AS MEASURE rev FROM Orders;
    CREATE VIEW CustOnly AS SELECT custName, rev FROM V;
  )sql");
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT custName, AGGREGATE(rev) AS r FROM CustOnly GROUP BY custName
    ORDER BY custName
  )sql");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.Get(0, "r").int_val(), 13);  // Alice
  EXPECT_EQ(rs.Get(1, "r").int_val(), 9);   // Bob
  EXPECT_EQ(rs.Get(2, "r").int_val(), 3);   // Celia
  // prodName is gone.
  auto bad = db_.Query("SELECT prodName FROM CustOnly");
  EXPECT_FALSE(bad.ok());
}

// Measures composed across a join and re-exported by a wide view (paper
// section 5.3: wide tables).
TEST_F(CompositionTest, WideViewOverJoin) {
  MustExecute(&db_, R"sql(
    CREATE VIEW EC AS SELECT *, AVG(custAge) AS MEASURE avgAge FROM Customers;
    CREATE VIEW Wide AS
      SELECT o.prodName, o.revenue, c.custName, c.avgAge
      FROM Orders AS o JOIN EC AS c USING (custName);
  )sql");
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, AGGREGATE(avgAge) AS a FROM Wide GROUP BY prodName
    ORDER BY prodName
  )sql");
  ASSERT_EQ(rs.num_rows(), 3u);
  // Happy: reachable customers Alice + Bob, each once -> 32.
  EXPECT_NEAR(rs.Get(1, "a").double_val(), 32.0, 1e-9);
  // Whizz: Celia only.
  EXPECT_NEAR(rs.Get(2, "a").double_val(), 17.0, 1e-9);
}

// Measure formulas can combine an aggregate over the current table with an
// input measure.
TEST_F(CompositionTest, MixedFormulaAggregateAndInputMeasure) {
  MustExecute(&db_, R"sql(
    CREATE VIEW L1 AS SELECT *, SUM(revenue) AS MEASURE rev FROM Orders;
    CREATE VIEW L2 AS SELECT *, rev - SUM(cost) AS MEASURE profit FROM L1;
  )sql");
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, AGGREGATE(profit) AS p FROM L2 GROUP BY prodName
    ORDER BY prodName
  )sql");
  EXPECT_EQ(rs.Get(0, "p").int_val(), 3);  // Acme 5 - 2
  EXPECT_EQ(rs.Get(1, "p").int_val(), 8);  // Happy 17 - 9
}

// Self-referencing measures are rejected (no recursion, section 5.4).
TEST_F(CompositionTest, RecursiveMeasureIsError) {
  auto r = db_.Query("SELECT *, rec + SUM(revenue) AS MEASURE rec FROM Orders");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kBind);
}

// Peer measures are only visible inside other measure formulas.
TEST_F(CompositionTest, PeerNotVisibleOutsideFormulas) {
  auto r = db_.Query(
      "SELECT SUM(revenue) AS MEASURE rev, rev + 1 AS plain FROM Orders");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kBind);
}

}  // namespace
}  // namespace msql

// Multi-threaded stress tests: N sessions running the paper-listing
// workload concurrently must produce exactly the serial results; CancelAll
// under load unwinds cleanly; concurrent INSERTs never let a reader observe
// a stale or torn measure value (snapshot isolation + generation-based
// cache invalidation).

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "gtest/gtest.h"
#include "runtime/scheduler.h"
#include "runtime/session.h"

namespace msql {
namespace {

constexpr int kSessions = 8;

void SeedPaperSchema(Engine* db) {
  ASSERT_TRUE(db->Execute(R"sql(
    CREATE TABLE Orders (prodName VARCHAR, custName VARCHAR,
                         orderDate DATE, revenue INTEGER);
    INSERT INTO Orders VALUES
      ('Happy', 'Alice', DATE '2023-11-28', 6),
      ('Acme', 'Bob', DATE '2023-11-27', 5),
      ('Happy', 'Alice', DATE '2024-11-28', 4),
      ('Whizz', 'Celia', DATE '2023-11-25', 3),
      ('Acme', 'Alice', DATE '2024-11-27', 7),
      ('Happy', 'Bob', DATE '2024-11-26', 2),
      ('Whizz', 'Celia', DATE '2024-11-25', 8),
      ('Acme', 'Alice', DATE '2023-11-24', 9);
    CREATE TABLE Customers (custName VARCHAR, custAge INTEGER);
    INSERT INTO Customers VALUES ('Alice', 30), ('Bob', 40), ('Celia', 17);
    CREATE VIEW EO AS
      SELECT *, SUM(revenue) AS MEASURE r, COUNT(*) AS MEASURE n,
             YEAR(orderDate) AS orderYear
      FROM Orders
  )sql")
                  .ok());
}

// Paper-listing shapes: plain AGGREGATE, ratio-to-total via AT (ALL),
// per-dimension pinning via AT (SET), joins and a correlated subquery.
const char* kWorkload[] = {
    "SELECT prodName, AGGREGATE(r) FROM EO GROUP BY prodName "
    "ORDER BY prodName",
    "SELECT prodName, AGGREGATE(r) / (r AT (ALL)) AS frac FROM EO "
    "GROUP BY prodName ORDER BY prodName",
    "SELECT custName, AGGREGATE(r), AGGREGATE(n) FROM EO "
    "GROUP BY custName ORDER BY custName",
    "SELECT orderYear, AGGREGATE(r), "
    "AGGREGATE(r AT (SET orderYear = orderYear - 1)) AS prev "
    "FROM EO GROUP BY orderYear ORDER BY orderYear",
    "SELECT c.custName, AGGREGATE(r) FROM EO o JOIN Customers c "
    "ON o.custName = c.custName GROUP BY c.custName ORDER BY c.custName",
    "SELECT prodName FROM Orders WHERE revenue > "
    "(SELECT AVG(revenue) FROM Orders) ORDER BY prodName",
    "SELECT prodName, AGGREGATE(r) FROM EO WHERE orderYear = 2024 "
    "GROUP BY prodName ORDER BY prodName",
};
constexpr int kWorkloadSize = sizeof(kWorkload) / sizeof(kWorkload[0]);

TEST(ConcurrencyStressTest, EightSessionsMatchSerialResults) {
  Engine db;
  SeedPaperSchema(&db);

  // Serial reference, on a naive-strategy engine so the concurrent run
  // shares nothing with it.
  std::vector<std::string> expected;
  {
    Engine ref;
    ref.options().measure_strategy = MeasureStrategy::kNaive;
    SeedPaperSchema(&ref);
    for (const char* sql : kWorkload) {
      auto r = ref.Query(sql);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      expected.push_back(r.value().ToCsv());
    }
  }

  const uint64_t queries_before = db.stats().queries;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kSessions; ++t) {
    threads.emplace_back([&db, &expected, &mismatches, &failures, t] {
      SessionPtr session = db.CreateSession();
      for (int round = 0; round < 20; ++round) {
        // Stagger starting offsets so threads hit different queries at the
        // same time (more cache contention interleavings).
        const int qi = (t + round) % kWorkloadSize;
        auto r = session->Query(kWorkload[qi]);
        if (!r.ok()) {
          ++failures;
          continue;
        }
        if (r.value().ToCsv() != expected[qi]) ++mismatches;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  const EngineStats stats = db.stats();
  EXPECT_EQ(stats.queries - queries_before,
            static_cast<uint64_t>(kSessions) * 20);
  // The repeat workload must actually exercise the cross-query cache.
  EXPECT_GT(stats.shared_cache_hits, 0u);
}

TEST(ConcurrencyStressTest, SchedulerRunsMixedSessionLoad) {
  Engine db;
  SeedPaperSchema(&db);
  SchedulerOptions opts;
  opts.num_threads = 4;
  QueryScheduler scheduler(opts);

  std::vector<SessionPtr> sessions;
  for (int i = 0; i < kSessions; ++i) sessions.push_back(db.CreateSession());

  std::vector<QueryScheduler::QueryFuture> futures;
  int rejected = 0;
  for (int round = 0; round < 10; ++round) {
    for (int s = 0; s < kSessions; ++s) {
      auto f = scheduler.Submit(sessions[s],
                                kWorkload[(s + round) % kWorkloadSize]);
      if (f.ok()) {
        futures.push_back(f.take());
      } else {
        // Admission control may shed load; that is the contract.
        ASSERT_EQ(f.status().code(), ErrorCode::kResourceExhausted);
        ++rejected;
      }
    }
  }
  for (auto& f : futures) {
    auto r = f.get();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }
  scheduler.Drain();
  EXPECT_EQ(scheduler.pending(), 0u);
  EXPECT_GT(static_cast<int>(futures.size()), rejected);
}

TEST(ConcurrencyStressTest, CancelAllUnderLoadUnwindsCleanly) {
  Engine db;
  SeedPaperSchema(&db);
  // Widen the data so queries run long enough to be caught in flight.
  {
    std::vector<Row> bulk;
    for (int i = 0; i < 20000; ++i) {
      bulk.push_back({Value::String("P" + std::to_string(i % 50)),
                      Value::String("C" + std::to_string(i % 200)),
                      Value::Date(19000 + i % 900), Value::Int(i % 97)});
    }
    ASSERT_TRUE(db.InsertRows("Orders", std::move(bulk)).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> cancelled{0};
  std::atomic<int> completed{0};
  std::atomic<int> unexpected{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kSessions; ++t) {
    threads.emplace_back([&db, &stop, &cancelled, &completed, &unexpected] {
      SessionPtr session = db.CreateSession();
      // Defeat all caching so every iteration does real work that a cancel
      // can interrupt.
      session->options().measure_strategy = MeasureStrategy::kNaive;
      session->options().memoize_subqueries = false;
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = session->Query(
            "SELECT prodName, AGGREGATE(r) FROM EO GROUP BY prodName");
        if (r.ok()) {
          ++completed;
        } else if (r.status().code() == ErrorCode::kCancelled) {
          ++cancelled;
        } else {
          ++unexpected;
        }
      }
    });
  }

  // Let the workers get in flight, then cancel everything a few times.
  for (int i = 0; i < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    db.CancelAll();
  }
  stop = true;
  for (auto& th : threads) th.join();

  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_GT(cancelled.load(), 0);
  // The engine is fully usable afterwards.
  auto r = db.Query("SELECT COUNT(*) FROM Orders");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().rows()[0][0].int_val(), 20008);
}

TEST(ConcurrencyStressTest, ConcurrentInsertsNeverYieldStaleOrTornSums) {
  // Writer appends rows with revenue=1 in batches of `kBatch`; readers sum
  // revenue through a measure. Every observed sum must be a valid prefix
  // state (base + k*kBatch) and each reader's view must be monotonic —
  // a stale cache hit after an insert would go backwards, a torn scan
  // would land between batch states.
  Engine db;
  ASSERT_TRUE(db.Execute(R"sql(
    CREATE TABLE Ticks (v INTEGER);
    INSERT INTO Ticks VALUES (1), (1), (1), (1);
    CREATE VIEW ET AS SELECT *, SUM(v) AS MEASURE total FROM Ticks
  )sql")
                  .ok());
  constexpr int kBatch = 5;
  constexpr int kBatches = 60;
  constexpr int64_t kBase = 4;

  constexpr int64_t kFinal = kBase + int64_t{kBatch} * kBatches;
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&db, &done, &violations] {
      SessionPtr session = db.CreateSession();
      auto read_sum = [&session, &violations]() -> int64_t {
        auto r = session->Query("SELECT AGGREGATE(total) FROM ET");
        if (!r.ok()) {
          ++violations;
          return -1;
        }
        return r.value().rows()[0][0].int_val();
      };
      while (!done.load(std::memory_order_relaxed)) {
        const int64_t sum = read_sum();
        if (sum < 0) return;
        const bool prefix_state =
            sum >= kBase && (sum - kBase) % kBatch == 0 && sum <= kFinal;
        if (!prefix_state) ++violations;
      }
      // Staleness check: with all inserts published, a fresh read must see
      // the final state — a stale cache entry surviving invalidation would
      // surface here deterministically.
      if (read_sum() != kFinal) ++violations;
    });
  }

  SessionPtr writer = db.CreateSession();
  for (int b = 0; b < kBatches; ++b) {
    ASSERT_TRUE(
        writer->Execute("INSERT INTO Ticks VALUES (1), (1), (1), (1), (1)")
            .ok());
  }
  done = true;
  for (auto& th : readers) th.join();
  EXPECT_EQ(violations.load(), 0);

  // Final state matches an uncached engine evaluating from scratch.
  auto final_sum = db.Query("SELECT AGGREGATE(total) FROM ET");
  ASSERT_TRUE(final_sum.ok());
  EXPECT_EQ(final_sum.value().rows()[0][0].int_val(),
            kBase + int64_t{kBatch} * kBatches);
}

TEST(ConcurrencyStressTest, ConcurrentDdlAndQueries) {
  // DDL (view churn) racing read queries: readers bind against immutable
  // catalog snapshots, so they either see the old or the new definition,
  // never an error other than clean not-found.
  Engine db;
  SeedPaperSchema(&db);
  std::atomic<bool> done{false};
  std::atomic<int> unexpected{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&db, &done, &unexpected] {
      SessionPtr session = db.CreateSession();
      while (!done.load(std::memory_order_relaxed)) {
        auto r = session->Query(
            "SELECT prodName, AGGREGATE(r) FROM EO GROUP BY prodName");
        if (!r.ok()) ++unexpected;
        auto r2 = session->Query("SELECT AGGREGATE(x2) FROM Scratch");
        // Scratch flips in and out of existence; both outcomes are fine,
        // but any error must be the clean catalog one.
        if (!r2.ok() && r2.status().code() != ErrorCode::kCatalog) {
          ++unexpected;
        }
      }
    });
  }

  SessionPtr ddl = db.CreateSession();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(ddl->Execute("CREATE OR REPLACE VIEW Scratch AS "
                             "SELECT *, SUM(revenue * 2) AS MEASURE x2 "
                             "FROM Orders")
                    .ok());
    ASSERT_TRUE(ddl->Execute("DROP VIEW Scratch").ok());
  }
  done = true;
  for (auto& th : readers) th.join();
  EXPECT_EQ(unexpected.load(), 0);
}

}  // namespace
}  // namespace msql

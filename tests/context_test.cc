// Unit tests for the EvalContext term algebra and signatures — the runtime
// core of the paper's evaluation-context concept (table 3).

#include "measure/context.h"

#include "gtest/gtest.h"

namespace msql {
namespace {

std::shared_ptr<const BoundExpr> Dim(const std::string& name) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = BoundExprKind::kColumnRef;
  e->depth = 0;
  e->column = 0;
  e->name = name;
  e->type = DataType::String();
  return std::shared_ptr<const BoundExpr>(e.release());
}

TEST(EvalContextTest, SetDimReplacesSameKey) {
  EvalContext ctx;
  ctx.SetDim("prodName", Dim("prodName"), Value::String("Happy"));
  ctx.SetDim("prodName", Dim("prodName"), Value::String("Acme"));
  ASSERT_EQ(ctx.terms().size(), 1u);
  EXPECT_EQ(ctx.terms()[0].value.str(), "Acme");
}

TEST(EvalContextTest, KeyMatchingIsCaseInsensitive) {
  EvalContext ctx;
  ctx.SetDim("prodName", Dim("prodName"), Value::String("Happy"));
  ctx.RemoveDim("PRODNAME");
  EXPECT_TRUE(ctx.empty());
}

TEST(EvalContextTest, RemoveOnlyNamedDim) {
  EvalContext ctx;
  ctx.SetDim("a", Dim("a"), Value::Int(1));
  ctx.SetDim("b", Dim("b"), Value::Int(2));
  ctx.RemoveDim("a");
  ASSERT_EQ(ctx.terms().size(), 1u);
  EXPECT_EQ(ctx.terms()[0].key, "b");
}

TEST(EvalContextTest, ClearRemovesEverything) {
  EvalContext ctx;
  ctx.SetDim("a", Dim("a"), Value::Int(1));
  ctx.AddPredicate(Dim("p"));
  auto ids = std::make_shared<std::vector<int64_t>>(std::vector<int64_t>{1});
  ctx.AddRowIds(ids);
  ctx.Clear();
  EXPECT_TRUE(ctx.empty());
}

TEST(EvalContextTest, CurrentValue) {
  EvalContext ctx;
  ctx.SetDim("year", Dim("year"), Value::Int(2024));
  ASSERT_TRUE(ctx.CurrentValue("year").has_value());
  EXPECT_EQ(ctx.CurrentValue("year")->int_val(), 2024);
  EXPECT_FALSE(ctx.CurrentValue("month").has_value());
  // Predicates do not pin values.
  ctx.Clear();
  ctx.AddPredicate(Dim("year"));
  EXPECT_FALSE(ctx.CurrentValue("year").has_value());
}

TEST(EvalContextTest, SignatureIsOrderInsensitive) {
  EvalContext a;
  a.SetDim("x", Dim("x"), Value::Int(1));
  a.SetDim("y", Dim("y"), Value::Int(2));
  EvalContext b;
  b.SetDim("y", Dim("y"), Value::Int(2));
  b.SetDim("x", Dim("x"), Value::Int(1));
  EXPECT_EQ(a.Signature(), b.Signature());
}

TEST(EvalContextTest, SignatureDistinguishesValues) {
  EvalContext a;
  a.SetDim("x", Dim("x"), Value::Int(1));
  EvalContext b;
  b.SetDim("x", Dim("x"), Value::Int(2));
  EXPECT_NE(a.Signature(), b.Signature());
  // NULL vs 0 vs '' are distinct.
  EvalContext n0, nn, ns;
  n0.SetDim("x", Dim("x"), Value::Int(0));
  nn.SetDim("x", Dim("x"), Value::Null());
  ns.SetDim("x", Dim("x"), Value::String(""));
  EXPECT_NE(n0.Signature(), nn.Signature());
  EXPECT_NE(nn.Signature(), ns.Signature());
  EXPECT_NE(n0.Signature(), ns.Signature());
}

TEST(EvalContextTest, SignatureDistinguishesTermKinds) {
  EvalContext dim;
  dim.SetDim("x", Dim("x"), Value::Int(1));
  EvalContext pred;
  pred.AddPredicate(Dim("x"));
  EXPECT_NE(dim.Signature(), pred.Signature());
}

TEST(EvalContextTest, RowIdSignatureHashesContent) {
  auto ids1 = std::make_shared<std::vector<int64_t>>(
      std::vector<int64_t>{1, 2, 3});
  auto ids2 = std::make_shared<std::vector<int64_t>>(
      std::vector<int64_t>{1, 2, 4});
  auto ids3 = std::make_shared<std::vector<int64_t>>(
      std::vector<int64_t>{1, 2, 3});
  EvalContext a, b, c;
  a.AddRowIds(ids1);
  b.AddRowIds(ids2);
  c.AddRowIds(ids3);
  EXPECT_NE(a.Signature(), b.Signature());
  EXPECT_EQ(a.Signature(), c.Signature());
}

TEST(EvalContextTest, EmptySignature) {
  EvalContext ctx;
  EXPECT_EQ(ctx.Signature(), "");
  ctx.SetDim("x", Dim("x"), Value::Int(1));
  ctx.RemoveDim("x");
  EXPECT_EQ(ctx.Signature(), "");
}

TEST(EvalContextTest, EscapedValuesDoNotCollide) {
  // A string value that looks like another term's rendering must not make
  // two different contexts collide.
  EvalContext a;
  a.SetDim("x", Dim("x"), Value::String("1&d:y=2"));
  EvalContext b;
  b.SetDim("x", Dim("x"), Value::String("1"));
  b.SetDim("y", Dim("y"), Value::Int(2));
  EXPECT_NE(a.Signature(), b.Signature());
}

}  // namespace
}  // namespace msql

-- CURRENT resolves against the context the AT clause was entered with, not
-- the partially-modified one: AT (ALL d SET d = CURRENT d) is the identity
-- (paper section 3.5), and VISIBLE's row-set restriction survives a later
-- ALL d. Both were found (and fixed) by msqlcheck seeds 49 and 8.
CREATE TABLE t0 (d0 VARCHAR, d1 INTEGER, v0 INTEGER);
INSERT INTO t0 VALUES ('A', 1, 10), ('A', 2, 20), ('B', 1, 30), ('B', 2, 40), (NULL, 1, 50);
CREATE VIEW V0 AS SELECT *, SUM(v0) AS MEASURE m0 FROM t0;
-- check: equal  (all-set-roundtrip)
SELECT d0, m0 AS x FROM V0 GROUP BY d0;
SELECT d0, m0 AT (ALL d0 SET d0 = CURRENT d0) AS x FROM V0 GROUP BY d0;
-- check: differential  (current-after-all)
SELECT d0, d1, m0 AT (ALL d1 SET d1 = CURRENT d1) AS back FROM V0 GROUP BY d0, d1;
-- check: differential  (visible-survives-all)
SELECT d0, m0 AT (VISIBLE ALL d0 d1) AS x FROM V0 WHERE d1 >= 1 GROUP BY d0;
-- check: differential  (where-then-visible)
SELECT d0, m0 AT (WHERE v0 > 15 VISIBLE) AS x FROM V0 WHERE d1 = 1 GROUP BY d0;

-- Shrunk from generator seed 103. Duplicate source rows at row grain: the
-- native VISIBLE set is a row-id set that distinguishes duplicates no
-- column predicate can tell apart, so the expansion leg declines this
-- shape (counted as a skip) while the four native strategies must still
-- agree — m0 AT (VISIBLE) is 1 per output row, bare m0 counts both
-- duplicates.
CREATE TABLE t0 (d1 INTEGER);
INSERT INTO t0 VALUES (0), (0);
CREATE VIEW V0 AS SELECT *, COUNT(*) AS MEASURE m0 FROM t0;
-- check: differential  (row-grain-visible)
SELECT m0 AT (VISIBLE) AS x0, m0 AS x1 FROM V0;
-- check: differential  (grouped-visible-still-expands)
SELECT d1, m0 AT (VISIBLE) AS x0, m0 AS x1 FROM V0 GROUP BY d1;

-- Measures over an empty source: aggregates are NULL (COUNT is 0), the
-- visible set is empty, and grouped queries produce zero rows — on every
-- strategy and on the expansion leg alike.
CREATE TABLE t0 (d0 VARCHAR, v0 INTEGER);
CREATE VIEW V0 AS SELECT *, SUM(v0) AS MEASURE m0, COUNT(*) AS MEASURE cnt FROM t0;
-- check: differential  (empty-grouped)
SELECT d0, m0, cnt FROM V0 GROUP BY d0;
-- check: differential  (empty-aggregate)
SELECT AGGREGATE(m0) AS x0, AGGREGATE(cnt) AS x1 FROM V0;
-- check: tlp COUNT  (tlp-over-empty)
SELECT AGGREGATE(cnt) AS x FROM V0;
SELECT AGGREGATE(cnt) AS x FROM V0 WHERE v0 > 0;
SELECT AGGREGATE(cnt) AS x FROM V0 WHERE NOT (v0 > 0);
SELECT AGGREGATE(cnt) AS x FROM V0 WHERE (v0 > 0) IS NULL;

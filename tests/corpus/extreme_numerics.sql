-- Extreme doubles: magnitudes near the representable limits, negative
-- zero, and catastrophic-cancellation sums. Strategies may reassociate
-- floating-point additions, so agreement here exercises the comparator's
-- ULP tolerance rather than bitwise equality.
CREATE TABLE t0 (d0 VARCHAR, v0 DOUBLE);
INSERT INTO t0 VALUES ('A', 1e308), ('A', -1e308), ('A', 1.5), ('B', 1e-300), ('B', -0.0), ('B', 2.5e100), (NULL, -2.5e100);
CREATE VIEW V0 AS SELECT *, SUM(v0) AS MEASURE s, AVG(v0) AS MEASURE a, MAX(v0) AS MEASURE mx FROM t0;
-- check: differential  (extreme-grouped)
SELECT d0, s, a, mx FROM V0 GROUP BY d0;
-- check: differential  (extreme-global)
SELECT AGGREGATE(s) AS x0, AGGREGATE(mx) AS x1 FROM V0;
-- check: tlp SUM  (tlp-extremes)
SELECT AGGREGATE(s) AS x FROM V0;
SELECT AGGREGATE(s) AS x FROM V0 WHERE v0 > 0;
SELECT AGGREGATE(s) AS x FROM V0 WHERE NOT (v0 > 0);
SELECT AGGREGATE(s) AS x FROM V0 WHERE (v0 > 0) IS NULL;

-- NULL dimension values group under IS NOT DISTINCT FROM semantics (paper
-- footnote 1). Historically the textual expansion emitted `=` for context
-- dimension terms, which silently dropped every NULL-keyed group's rows;
-- this case pins the IS NOT DISTINCT FROM rendering.
CREATE TABLE t0 (d0 VARCHAR, d1 INTEGER, v0 INTEGER);
INSERT INTO t0 VALUES (NULL, 1, 10), (NULL, 2, 20), ('A', 1, 30), ('A', NULL, 40), (NULL, NULL, 50);
CREATE VIEW V0 AS SELECT *, SUM(v0) AS MEASURE m0, COUNT(*) AS MEASURE cnt FROM t0;
-- check: differential  (null-keyed-groups)
SELECT d0, m0, cnt FROM V0 GROUP BY d0;
-- check: differential  (null-key-share)
SELECT d0, d1, m0, m0 AT (ALL d1) AS byd0 FROM V0 GROUP BY d0, d1;
-- check: differential  (set-to-null-partner)
SELECT d0, m0 AT (SET d1 = NULL) AS nullSlice FROM V0 GROUP BY d0;
-- check: equal  (aggregate-equals-at-visible)
SELECT d0, AGGREGATE(m0) AS x FROM V0 WHERE v0 > 15 GROUP BY d0;
SELECT d0, m0 AT (VISIBLE) AS x FROM V0 WHERE v0 > 15 GROUP BY d0;

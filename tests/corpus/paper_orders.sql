-- Paper running example (Listing 1/4 shapes): grouped measures, the
-- AGGREGATE(m) == m AT (VISIBLE) identity, and the ALL/SET round-trip on
-- the Orders data. Every query runs through the full four-way differential
-- oracle plus the textual-expansion leg.
CREATE TABLE Orders (prodName VARCHAR, custName VARCHAR, orderDate DATE, revenue INTEGER);
INSERT INTO Orders VALUES ('Shirt', 'Alice', DATE '2024-01-05', 10), ('Shirt', 'Bob', DATE '2024-02-10', 20), ('Hat', 'Alice', DATE '2024-03-15', 5), ('Hat', 'Cy', DATE '2025-01-20', 15), ('Shirt', 'Cy', DATE '2025-02-25', 30);
CREATE VIEW EnhancedOrders AS SELECT *, SUM(revenue) AS MEASURE totalRevenue, COUNT(*) AS MEASURE orderCount, YEAR(orderDate) AS orderYear FROM Orders;
-- check: differential  (grouped-bare)
SELECT prodName, totalRevenue FROM EnhancedOrders GROUP BY prodName;
-- check: differential  (share-of-total)
SELECT prodName, totalRevenue, totalRevenue AT (ALL prodName) AS total FROM EnhancedOrders GROUP BY prodName;
-- check: differential  (year-over-year)
SELECT orderYear, totalRevenue, totalRevenue AT (SET orderYear = CURRENT orderYear - 1) AS prev FROM EnhancedOrders GROUP BY orderYear;
-- check: equal  (aggregate-equals-at-visible)
SELECT prodName, AGGREGATE(totalRevenue) AS x FROM EnhancedOrders WHERE custName <> 'Bob' GROUP BY prodName;
SELECT prodName, totalRevenue AT (VISIBLE) AS x FROM EnhancedOrders WHERE custName <> 'Bob' GROUP BY prodName;
-- check: equal  (all-set-roundtrip)
SELECT prodName, totalRevenue AS x FROM EnhancedOrders GROUP BY prodName;
SELECT prodName, totalRevenue AT (ALL prodName SET prodName = CURRENT prodName) AS x FROM EnhancedOrders GROUP BY prodName;

-- The three ungrouped evaluation grains (established against the engine,
-- documented in docs/TESTING.md): a top-level bare measure renders at the
-- result's grain, a measure nested in an expression or carrying AT
-- modifiers evaluates at row grain, and an ungrouped AGGREGATE collapses
-- the query to a single aggregate-grain row.
CREATE TABLE t0 (d0 VARCHAR, d1 INTEGER, v0 INTEGER);
INSERT INTO t0 VALUES ('A', 1, 1), ('A', 2, 2), ('B', 1, 4), ('B', 2, 8);
CREATE VIEW V0 AS SELECT *, SUM(v0) AS MEASURE m0 FROM t0;
-- check: differential  (result-grain)
SELECT d0, m0 FROM V0;
-- check: differential  (row-grain-arith)
SELECT d0, d1, m0 + 0 AS x FROM V0;
-- check: differential  (row-grain-at)
SELECT d0, m0 AT (ALL d1) AS x FROM V0 WHERE v0 > 1;
-- check: differential  (aggregate-grain)
SELECT AGGREGATE(m0) AS x FROM V0 WHERE d1 = 1;
-- check: tlp SUM  (tlp-sum)
SELECT AGGREGATE(m0) AS x FROM V0;
SELECT AGGREGATE(m0) AS x FROM V0 WHERE d0 = 'A';
SELECT AGGREGATE(m0) AS x FROM V0 WHERE NOT (d0 = 'A');
SELECT AGGREGATE(m0) AS x FROM V0 WHERE (d0 = 'A') IS NULL;

// Replays every checked-in corpus script (tests/corpus/*.sql) through the
// msqlcheck oracle. The corpus is the regression memory of the fuzzing
// subsystem: shrunk repros of discrepancies that were found and fixed, the
// paper's running example, and hand-written adversarial shapes (NULL group
// keys, empty tables, duplicate rows, extreme numerics). A failure here
// means a previously-fixed divergence between evaluation strategies — or
// between the engine and the textual expansion — has come back.

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "testing/harness.h"

namespace msql {
namespace testing {
namespace {

std::vector<std::string> CorpusFiles() {
  std::vector<std::string> files;
  std::filesystem::path dir =
      std::filesystem::path(MSQL_TEST_SOURCE_DIR) / "corpus";
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".sql") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(CorpusReplayTest, CorpusIsPresent) {
  // Guards against the directory silently going missing (say, a bad
  // checkout path), which would make the replay test pass vacuously.
  EXPECT_GE(CorpusFiles().size(), 5u);
}

TEST(CorpusReplayTest, EveryCorpusCasePassesTheOracle) {
  for (const std::string& path : CorpusFiles()) {
    auto outcome = ReplayScriptFile(path);
    ASSERT_TRUE(outcome.ok())
        << path << ": " << outcome.status().ToString();
    EXPECT_GT(outcome.value().queries_run, 0) << path;
    for (const auto& f : outcome.value().failures) {
      ADD_FAILURE() << path << " [" << f.label << "] " << f.detail;
    }
  }
}

}  // namespace
}  // namespace testing
}  // namespace msql

// Unit tests for the CSV reader/writer: quoting, embedded separators and
// newlines, NULL fields, schema inference, round trips and error handling.

#include "catalog/csv.h"

#include <cstdio>
#include <fstream>
#include <string>

#include "common/string_util.h"
#include "gtest/gtest.h"

namespace msql {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = StrCat("/tmp/msql_csv_test_", ::testing::UnitTest::GetInstance()
                                              ->current_test_info()
                                              ->name(),
                   ".csv");
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_, std::ios::binary);
    out << content;
  }

  std::string path_;
};

Schema SimpleSchema() {
  Schema s;
  s.AddColumn(Column("name", DataType::String()));
  s.AddColumn(Column("qty", DataType::Int64()));
  return s;
}

TEST_F(CsvTest, BasicAppend) {
  WriteFile("name,qty\npen,3\nbook,5\n");
  Table t("t", SimpleSchema());
  ASSERT_TRUE(AppendCsv(path_, /*header=*/true, &t).ok());
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ((*t.snapshot())[0][0].str(), "pen");
  EXPECT_EQ((*t.snapshot())[1][1].int_val(), 5);
}

TEST_F(CsvTest, NoHeader) {
  WriteFile("pen,3\n");
  Table t("t", SimpleSchema());
  ASSERT_TRUE(AppendCsv(path_, /*header=*/false, &t).ok());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST_F(CsvTest, QuotedFields) {
  WriteFile("name,qty\n\"a, b\",1\n\"say \"\"hi\"\"\",2\n\"line\nbreak\",3\n");
  Table t("t", SimpleSchema());
  ASSERT_TRUE(AppendCsv(path_, true, &t).ok());
  ASSERT_EQ(t.num_rows(), 3u);
  EXPECT_EQ((*t.snapshot())[0][0].str(), "a, b");
  EXPECT_EQ((*t.snapshot())[1][0].str(), "say \"hi\"");
  EXPECT_EQ((*t.snapshot())[2][0].str(), "line\nbreak");
}

TEST_F(CsvTest, EmptyFieldsBecomeNull) {
  WriteFile("name,qty\npen,\n,4\n");
  Table t("t", SimpleSchema());
  ASSERT_TRUE(AppendCsv(path_, true, &t).ok());
  EXPECT_TRUE((*t.snapshot())[0][1].is_null());
  EXPECT_TRUE((*t.snapshot())[1][0].is_null());
}

TEST_F(CsvTest, CrLfLineEndings) {
  WriteFile("name,qty\r\npen,3\r\n");
  Table t("t", SimpleSchema());
  ASSERT_TRUE(AppendCsv(path_, true, &t).ok());
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ((*t.snapshot())[0][0].str(), "pen");
}

TEST_F(CsvTest, MissingFinalNewline) {
  WriteFile("name,qty\npen,3");
  Table t("t", SimpleSchema());
  ASSERT_TRUE(AppendCsv(path_, true, &t).ok());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST_F(CsvTest, ArityMismatchFailsWithLineNumber) {
  WriteFile("name,qty\npen,3\nbook\n");
  Table t("t", SimpleSchema());
  Status st = AppendCsv(path_, true, &t);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kIo);
  // The short record is on source line 3.
  EXPECT_NE(st.message().find("line 3"), std::string::npos) << st.ToString();
}

TEST_F(CsvTest, BadTypeFailsWithLineAndColumn) {
  WriteFile("name,qty\npen,3\npen,many\n");
  Table t("t", SimpleSchema());
  Status st = AppendCsv(path_, true, &t);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kIo);
  EXPECT_NE(st.message().find("line 3"), std::string::npos) << st.ToString();
  EXPECT_NE(st.message().find("'qty'"), std::string::npos) << st.ToString();
}

TEST_F(CsvTest, UnterminatedQuoteReportsOpeningLine) {
  WriteFile("name,qty\npen,3\n\"book,5\nmore,6\n");
  Table t("t", SimpleSchema());
  Status st = AppendCsv(path_, true, &t);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kIo);
  // The quote opens on line 3; the error must cite it, not EOF.
  EXPECT_NE(st.message().find("line 3"), std::string::npos) << st.ToString();
  EXPECT_NE(st.message().find("unterminated"), std::string::npos)
      << st.ToString();
}

TEST_F(CsvTest, EmbeddedNulByteFailsWithLineNumber) {
  std::string content = "name,qty\npen,3\nbo";
  content.push_back('\0');
  content += "ok,5\n";
  WriteFile(content);
  Table t("t", SimpleSchema());
  Status st = AppendCsv(path_, true, &t);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kIo);
  EXPECT_NE(st.message().find("NUL"), std::string::npos) << st.ToString();
  EXPECT_NE(st.message().find("line 3"), std::string::npos) << st.ToString();
}

TEST_F(CsvTest, ArityLineNumberCountsQuotedNewlines) {
  // A quoted field spanning lines 2-3 must not shift later line numbers.
  WriteFile("name,qty\n\"a\nb\",1\nshort\n");
  Table t("t", SimpleSchema());
  Status st = AppendCsv(path_, true, &t);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 4"), std::string::npos) << st.ToString();
}

TEST_F(CsvTest, MissingFileFails) {
  Table t("t", SimpleSchema());
  EXPECT_FALSE(AppendCsv("/nonexistent/nope.csv", true, &t).ok());
}

TEST_F(CsvTest, SchemaInference) {
  WriteFile(
      "i,d,s,dt,mixed\n"
      "1,1.5,hello,2024-01-01,1\n"
      "2,2,world,2024-02-03,x\n"
      ",,,,\n");
  auto schema = InferCsvSchema(path_);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema.value().column(0).type.kind, TypeKind::kInt64);
  EXPECT_EQ(schema.value().column(1).type.kind, TypeKind::kDouble);
  EXPECT_EQ(schema.value().column(2).type.kind, TypeKind::kString);
  EXPECT_EQ(schema.value().column(3).type.kind, TypeKind::kDate);
  EXPECT_EQ(schema.value().column(4).type.kind, TypeKind::kString);
}

TEST_F(CsvTest, InferenceOnEmptyFileFails) {
  WriteFile("");
  EXPECT_FALSE(InferCsvSchema(path_).ok());
}

TEST_F(CsvTest, WriteRoundTrip) {
  Table t("t", SimpleSchema());
  ASSERT_TRUE(t.AppendRow({Value::String("a, \"b\""), Value::Int(1)}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null(), Value::Int(2)}).ok());
  ASSERT_TRUE(WriteCsv(path_, t).ok());

  Table back("back", SimpleSchema());
  ASSERT_TRUE(AppendCsv(path_, true, &back).ok());
  ASSERT_EQ(back.num_rows(), 2u);
  EXPECT_EQ((*back.snapshot())[0][0].str(), "a, \"b\"");
  EXPECT_TRUE((*back.snapshot())[1][0].is_null());
  EXPECT_EQ((*back.snapshot())[1][1].int_val(), 2);
}

TEST_F(CsvTest, BlankLinesAreSkipped) {
  WriteFile("name,qty\n\npen,3\n\n");
  Table t("t", SimpleSchema());
  ASSERT_TRUE(AppendCsv(path_, true, &t).ok());
  EXPECT_EQ(t.num_rows(), 1u);
}

}  // namespace
}  // namespace msql

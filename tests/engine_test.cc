// Tests for the Engine facade: DDL life cycle, EXPLAIN, DESCRIBE, CSV
// import/export, execution statistics, and result formatting.

#include <cstdio>
#include <fstream>

#include "catalog/csv.h"
#include "engine/engine.h"
#include "gtest/gtest.h"
#include "tests/paper_fixture.h"

namespace msql {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  Engine db_;
};

TEST_F(EngineTest, CreateInsertDropLifecycle) {
  MustExecute(&db_, "CREATE TABLE t (a INTEGER)");
  MustExecute(&db_, "INSERT INTO t VALUES (1), (2)");
  EXPECT_EQ(MustQuery(&db_, "SELECT COUNT(*) AS n FROM t").Get(0, "n").int_val(),
            2);
  // Duplicate create fails; IF NOT EXISTS succeeds.
  EXPECT_FALSE(db_.Execute("CREATE TABLE t (a INTEGER)").ok());
  MustExecute(&db_, "CREATE TABLE IF NOT EXISTS t (a INTEGER)");
  MustExecute(&db_, "DROP TABLE t");
  EXPECT_FALSE(db_.Query("SELECT * FROM t").ok());
  MustExecute(&db_, "DROP TABLE IF EXISTS t");
  EXPECT_FALSE(db_.Execute("DROP TABLE t").ok());
}

TEST_F(EngineTest, CreateViewValidatesEagerly) {
  auto st = db_.Execute("CREATE VIEW v AS SELECT nope FROM missing");
  EXPECT_FALSE(st.ok());
  // Replacement only with OR REPLACE.
  MustExecute(&db_, "CREATE TABLE t (a INTEGER)");
  MustExecute(&db_, "CREATE VIEW v AS SELECT a FROM t");
  EXPECT_FALSE(db_.Execute("CREATE VIEW v AS SELECT a FROM t").ok());
  MustExecute(&db_, "CREATE OR REPLACE VIEW v AS SELECT a + 1 AS b FROM t");
  // Dropping a view as a table is an error.
  EXPECT_FALSE(db_.Execute("DROP TABLE v").ok());
  MustExecute(&db_, "DROP VIEW v");
}

TEST_F(EngineTest, ExplainShowsPlanAndMeasures) {
  LoadPaperData(&db_);
  MustExecute(&db_,
              "CREATE VIEW V AS SELECT *, SUM(revenue) AS MEASURE r FROM Orders");
  auto plan = db_.Explain(
      "SELECT prodName, AGGREGATE(r) FROM V GROUP BY prodName");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan.value().find("Aggregate"), std::string::npos);
  EXPECT_NE(plan.value().find("Scan Orders"), std::string::npos);
  EXPECT_NE(plan.value().find("measures=[r]"), std::string::npos);

  // EXPLAIN as a statement returns the plan as rows.
  ResultSet rs = MustQuery(&db_,
      "EXPLAIN SELECT prodName FROM Orders WHERE revenue > 3");
  EXPECT_GT(rs.num_rows(), 1u);
}

TEST_F(EngineTest, DescribeTableAndView) {
  LoadPaperData(&db_);
  ResultSet t = MustQuery(&db_, "DESCRIBE Orders");
  EXPECT_EQ(t.num_rows(), 5u);
  MustExecute(&db_,
              "CREATE VIEW V AS SELECT prodName, SUM(revenue) AS MEASURE r "
              "FROM Orders");
  ResultSet v = MustQuery(&db_, "DESCRIBE V");
  ASSERT_EQ(v.num_rows(), 2u);
  EXPECT_EQ(v.Get(1, "type").str(), "INTEGER MEASURE");
}

TEST_F(EngineTest, ResultSetFormatting) {
  LoadPaperData(&db_);
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, SUM(revenue) AS total FROM Orders
    GROUP BY prodName ORDER BY prodName
  )sql");
  std::string table = rs.ToString();
  EXPECT_NE(table.find("prodName"), std::string::npos);
  EXPECT_NE(table.find("====="), std::string::npos);
  EXPECT_NE(table.find("Happy"), std::string::npos);
  std::string csv = rs.ToCsv();
  EXPECT_NE(csv.find("prodName,total"), std::string::npos);
  EXPECT_NE(csv.find("Happy,17"), std::string::npos);
}

TEST_F(EngineTest, LastStatsInstrumentation) {
  LoadPaperData(&db_);
  MustExecute(&db_,
              "CREATE VIEW V AS SELECT *, SUM(revenue) AS MEASURE r FROM Orders");
  ResultSet agg =
      MustQuery(&db_, "SELECT prodName, AGGREGATE(r) FROM V GROUP BY prodName");
  ASSERT_NE(agg.stats(), nullptr);
  EXPECT_GT(agg.stats()->measure_evals, 0u);
  // AGGREGATE call sites take the inline fast path: no source scans.
  EXPECT_EQ(agg.stats()->measure_source_scans, 0u);
  EXPECT_GT(agg.stats()->measure_inline_evals, 0u);
  // Contexts that are not row-id-only do scan the source.
  ResultSet all =
      MustQuery(&db_, "SELECT prodName, r AT (ALL) FROM V GROUP BY prodName");
  ASSERT_NE(all.stats(), nullptr);
  EXPECT_GT(all.stats()->measure_source_scans, 0u);
}

TEST_F(EngineTest, SubqueryMemoization) {
  LoadPaperData(&db_);
  const char* q = R"sql(
    SELECT prodName,
           (SELECT SUM(revenue) FROM Orders AS i
            WHERE i.prodName = o.prodName) AS r
    FROM Orders AS o
  )sql";
  db_.options().memoize_subqueries = true;
  ResultSet memoized = MustQuery(&db_, q);
  ASSERT_NE(memoized.stats(), nullptr);
  EXPECT_GT(memoized.stats()->subquery_cache_hits, 0u);
  db_.options().memoize_subqueries = false;
  ResultSet plain = MustQuery(&db_, q);
  ASSERT_NE(plain.stats(), nullptr);
  EXPECT_EQ(plain.stats()->subquery_cache_hits, 0u);
}

TEST_F(EngineTest, CsvRoundTrip) {
  const std::string path = "/tmp/msql_test_orders.csv";
  {
    std::ofstream out(path);
    out << "prodName,qty,price,shipDate\n";
    out << "widget,3,2.5,2024-01-01\n";
    out << "\"gadget, deluxe\",1,10,2024-02-01\n";
    out << "widget,,3.25,\n";  // NULL qty and date
  }
  ASSERT_TRUE(db_.ImportCsv("inventory", path).ok());
  ResultSet d = MustQuery(&db_, "DESCRIBE inventory");
  ASSERT_EQ(d.num_rows(), 4u);
  EXPECT_EQ(d.Get(1, "type").str(), "INTEGER");
  EXPECT_EQ(d.Get(2, "type").str(), "DOUBLE");
  EXPECT_EQ(d.Get(3, "type").str(), "DATE");

  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, SUM(price) AS total FROM inventory
    GROUP BY prodName ORDER BY prodName
  )sql");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.Get(0, "prodName").str(), "gadget, deluxe");
  EXPECT_NEAR(rs.Get(1, "total").double_val(), 5.75, 1e-9);

  // Append through LoadCsv into the existing table.
  ASSERT_TRUE(db_.LoadCsv("inventory", path).ok());
  EXPECT_EQ(MustQuery(&db_, "SELECT COUNT(*) AS n FROM inventory")
                .Get(0, "n")
                .int_val(),
            6);
  std::remove(path.c_str());
}

TEST_F(EngineTest, CsvErrors) {
  EXPECT_FALSE(db_.ImportCsv("t", "/nonexistent/file.csv").ok());
  const std::string path = "/tmp/msql_bad.csv";
  {
    std::ofstream out(path);
    out << "a,b\n1\n";  // wrong arity
  }
  EXPECT_FALSE(db_.ImportCsv("bad", path).ok());
  std::remove(path.c_str());
}

TEST_F(EngineTest, CopyStatement) {
  LoadPaperData(&db_);
  const std::string path = "/tmp/msql_copy_test.csv";
  MustExecute(&db_, "COPY Orders TO '" + path + "'");
  MustExecute(&db_, "CREATE TABLE Orders2 (prodName VARCHAR, "
                    "custName VARCHAR, orderDate DATE, revenue INTEGER, "
                    "cost INTEGER)");
  MustExecute(&db_, "COPY Orders2 FROM '" + path + "'");
  EXPECT_EQ(MustQuery(&db_, "SELECT COUNT(*) AS n FROM Orders2")
                .Get(0, "n")
                .int_val(),
            5);
  // Views export through materialization.
  MustExecute(&db_, "CREATE VIEW TotalsByProduct AS "
                    "SELECT prodName, SUM(revenue) AS r FROM Orders "
                    "GROUP BY prodName");
  MustExecute(&db_, "COPY TotalsByProduct TO '" + path + "'");
  MustExecute(&db_, "CREATE TABLE Totals (prodName VARCHAR, r INTEGER)");
  MustExecute(&db_, "COPY Totals FROM '" + path + "'");
  EXPECT_EQ(MustQuery(&db_, "SELECT COUNT(*) AS n FROM Totals")
                .Get(0, "n")
                .int_val(),
            3);
  EXPECT_FALSE(db_.Execute("COPY missing TO '" + path + "'").ok());
  std::remove(path.c_str());
}

TEST_F(EngineTest, MultiStatementExecute) {
  MustExecute(&db_, R"sql(
    CREATE TABLE a (x INTEGER);
    INSERT INTO a VALUES (1);
    CREATE VIEW b AS SELECT x * 2 AS y FROM a;
  )sql");
  EXPECT_EQ(MustQuery(&db_, "SELECT y FROM b").Get(0, "y").int_val(), 2);
}

TEST_F(EngineTest, MeasureColumnsRenderAtRowGrain) {
  LoadPaperData(&db_);
  MustExecute(&db_,
              "CREATE VIEW V AS SELECT *, SUM(revenue) AS MEASURE r FROM Orders");
  // Selecting the measure column directly evaluates it per row (every
  // dimension pinned), so identical rows aggregate together.
  ResultSet rs = MustQuery(&db_, "SELECT prodName, revenue, r FROM V "
                                 "ORDER BY prodName, revenue");
  for (size_t i = 0; i < rs.num_rows(); ++i) {
    EXPECT_EQ(rs.Get(i, "r").int_val(), rs.Get(i, "revenue").int_val());
  }
}

TEST_F(EngineTest, RecursionGuard) {
  // A deeply nested query hits the depth guard instead of overflowing.
  std::string q = "SELECT 1 AS x";
  for (int i = 0; i < 80; ++i) q = "SELECT x FROM (" + q + ") AS t" ;
  auto r = db_.Query(q);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("recursion limit"), std::string::npos);
}

}  // namespace
}  // namespace msql

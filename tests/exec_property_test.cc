// Property-based tests for the relational core on randomized data:
// algebraic identities that must hold regardless of the data (join
// commutativity, outer-join containment, filter/union cardinalities,
// aggregation consistency, sort stability).

#include <random>

#include "common/string_util.h"
#include "engine/engine.h"
#include "gtest/gtest.h"
#include "tests/paper_fixture.h"
#include "tests/testing_matchers.h"

namespace msql {
namespace {

class ExecPropertyTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  void SetUp() override {
    std::mt19937 rng(GetParam());
    std::uniform_int_distribution<int> key(0, 9);
    std::uniform_int_distribution<int> val(-50, 50);
    std::uniform_int_distribution<int> null_pct(0, 9);

    MustExecute(&db_, "CREATE TABLE a (k INTEGER, v INTEGER)");
    MustExecute(&db_, "CREATE TABLE b (k INTEGER, w INTEGER)");
    auto insert = [&](const char* table, int rows) {
      std::string sql = StrCat("INSERT INTO ", table, " VALUES ");
      for (int i = 0; i < rows; ++i) {
        if (i > 0) sql += ", ";
        bool null_key = null_pct(rng) == 0;
        sql += StrCat("(", null_key ? "NULL" : StrCat(key(rng)), ", ",
                      val(rng), ")");
      }
      MustExecute(&db_, sql);
    };
    insert("a", 40);
    insert("b", 25);
  }

  int64_t Scalar(const std::string& sql) {
    ResultSet rs = MustQuery(&db_, sql);
    EXPECT_EQ(rs.num_rows(), 1u) << sql;
    return rs.Get(0, 0).is_null() ? 0 : rs.Get(0, 0).int_val();
  }

  Engine db_;
};

TEST_P(ExecPropertyTest, InnerJoinIsCommutative) {
  int64_t ab = Scalar(
      "SELECT COUNT(*) FROM a JOIN b ON a.k = b.k");
  int64_t ba = Scalar(
      "SELECT COUNT(*) FROM b JOIN a ON a.k = b.k");
  EXPECT_EQ(ab, ba);
}

TEST_P(ExecPropertyTest, HashAndNestedLoopJoinsAgree) {
  // `a.k = b.k` takes the hash path; wrapping one side in an arithmetic
  // no-op that still references both sides forces the nested loop.
  int64_t hash = Scalar("SELECT COUNT(*) FROM a JOIN b ON a.k = b.k");
  int64_t nested = Scalar(
      "SELECT COUNT(*) FROM a JOIN b ON a.k <= b.k AND a.k >= b.k");
  EXPECT_EQ(hash, nested);
}

TEST_P(ExecPropertyTest, OuterJoinContainment) {
  int64_t inner = Scalar("SELECT COUNT(*) FROM a JOIN b ON a.k = b.k");
  int64_t left = Scalar("SELECT COUNT(*) FROM a LEFT JOIN b ON a.k = b.k");
  int64_t right = Scalar("SELECT COUNT(*) FROM a RIGHT JOIN b ON a.k = b.k");
  int64_t full = Scalar("SELECT COUNT(*) FROM a FULL JOIN b ON a.k = b.k");
  EXPECT_GE(left, inner);
  EXPECT_GE(right, inner);
  EXPECT_GE(full, left);
  EXPECT_GE(full, right);
  // FULL = INNER + left-unmatched + right-unmatched.
  int64_t na = Scalar("SELECT COUNT(*) FROM a");
  int64_t nb = Scalar("SELECT COUNT(*) FROM b");
  int64_t left_unmatched = left - inner;
  int64_t right_unmatched = right - inner;
  EXPECT_EQ(full, inner + left_unmatched + right_unmatched);
  EXPECT_LE(left_unmatched, na);
  EXPECT_LE(right_unmatched, nb);
}

TEST_P(ExecPropertyTest, CrossJoinCardinality) {
  int64_t na = Scalar("SELECT COUNT(*) FROM a");
  int64_t nb = Scalar("SELECT COUNT(*) FROM b");
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM a, b"), na * nb);
}

TEST_P(ExecPropertyTest, FilterPartitionsRows) {
  int64_t all = Scalar("SELECT COUNT(*) FROM a");
  int64_t pos = Scalar("SELECT COUNT(*) FROM a WHERE v > 0");
  int64_t nonpos = Scalar("SELECT COUNT(*) FROM a WHERE v <= 0");
  int64_t null_v = Scalar("SELECT COUNT(*) FROM a WHERE v IS NULL");
  EXPECT_EQ(all, pos + nonpos + null_v);
}

TEST_P(ExecPropertyTest, UnionAllAddsCardinalities) {
  int64_t na = Scalar("SELECT COUNT(*) FROM a");
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM "
                   "(SELECT k FROM a UNION ALL SELECT k FROM a) AS u"),
            2 * na);
  // UNION removes duplicates: at most the distinct count.
  int64_t distinct = Scalar("SELECT COUNT(*) FROM "
                            "(SELECT DISTINCT k FROM a) AS d");
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM "
                   "(SELECT k FROM a UNION SELECT k FROM a) AS u"),
            distinct);
}

TEST_P(ExecPropertyTest, GroupSumsEqualTotal) {
  ResultSet rs = MustQuery(&db_, "SELECT k, SUM(v) AS s FROM a GROUP BY k");
  int64_t total = 0;
  for (const Row& r : rs.rows()) {
    if (!r[1].is_null()) total += r[1].int_val();
  }
  EXPECT_EQ(total, Scalar("SELECT COALESCE(SUM(v), 0) FROM a"));
}

TEST_P(ExecPropertyTest, HavingIsFilterOverGroups) {
  int64_t groups =
      Scalar("SELECT COUNT(*) FROM (SELECT k FROM a GROUP BY k) AS g");
  int64_t kept = Scalar(
      "SELECT COUNT(*) FROM "
      "(SELECT k FROM a GROUP BY k HAVING COUNT(*) >= 2) AS g");
  EXPECT_LE(kept, groups);
}

TEST_P(ExecPropertyTest, DistinctIdempotent) {
  int64_t once = Scalar(
      "SELECT COUNT(*) FROM (SELECT DISTINCT k, v FROM a) AS d");
  int64_t twice = Scalar(
      "SELECT COUNT(*) FROM (SELECT DISTINCT k, v FROM "
      "(SELECT DISTINCT k, v FROM a) AS d1) AS d2");
  EXPECT_EQ(once, twice);
}

TEST_P(ExecPropertyTest, OrderByIsAPermutation) {
  ResultSet sorted = MustQuery(&db_, "SELECT v FROM a ORDER BY v NULLS LAST");
  ResultSet raw = MustQuery(&db_, "SELECT v FROM a");
  ASSERT_EQ(sorted.num_rows(), raw.num_rows());
  // Sorted is non-decreasing (NULLs at the end).
  for (size_t i = 1; i < sorted.num_rows(); ++i) {
    const Value& prev = sorted.Get(i - 1, 0);
    const Value& cur = sorted.Get(i, 0);
    if (prev.is_null()) {
      EXPECT_TRUE(cur.is_null());
    } else if (!cur.is_null()) {
      EXPECT_LE(prev.int_val(), cur.int_val());
    }
  }
  // Same multiset: equal sums and counts.
  int64_t s1 = 0, s2 = 0;
  for (size_t i = 0; i < raw.num_rows(); ++i) {
    if (!raw.Get(i, 0).is_null()) s1 += raw.Get(i, 0).int_val();
    if (!sorted.Get(i, 0).is_null()) s2 += sorted.Get(i, 0).int_val();
  }
  EXPECT_EQ(s1, s2);
}

TEST_P(ExecPropertyTest, WindowSumMatchesGroupSum) {
  ResultSet win = MustQuery(&db_, R"sql(
    SELECT DISTINCT k, SUM(v) OVER (PARTITION BY k) AS s FROM a
  )sql");
  ResultSet grp = MustQuery(&db_,
      "SELECT k, SUM(v) AS s FROM a GROUP BY k");
  // Row order is unspecified on both sides; the oracle's normalized
  // comparison sorts before matching.
  EXPECT_TRUE(testing::ResultsAgree(win, grp));
}

TEST_P(ExecPropertyTest, SubqueryCacheTransparent) {
  const char* q =
      "SELECT a.k, (SELECT SUM(b.w) FROM b WHERE b.k = a.k) AS s "
      "FROM a ORDER BY a.k NULLS LAST, s NULLS LAST";
  db_.options().memoize_subqueries = true;
  ResultSet cached = MustQuery(&db_, q);
  db_.options().memoize_subqueries = false;
  ResultSet fresh = MustQuery(&db_, q);
  EXPECT_TRUE(testing::ResultsAgree(cached, fresh));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecPropertyTest,
                         ::testing::Values(3u, 17u, 2024u));

}  // namespace
}  // namespace msql

// Property-based tests for the relational core on randomized data:
// algebraic identities that must hold regardless of the data (join
// commutativity, outer-join containment, filter/union cardinalities,
// aggregation consistency, sort stability), plus scalar-vs-vectorized
// agreement: the batch kernels (exec/vector_eval.cc) must match the
// row-at-a-time Evaluator bit for bit on randomized nullable batches.

#include <memory>
#include <random>
#include <vector>

#include "binder/bound_expr.h"
#include "common/string_util.h"
#include "engine/engine.h"
#include "exec/column_vector.h"
#include "exec/eval.h"
#include "exec/exec_state.h"
#include "exec/relation.h"
#include "exec/vector_eval.h"
#include "gtest/gtest.h"
#include "tests/paper_fixture.h"
#include "tests/testing_matchers.h"

namespace msql {
namespace {

class ExecPropertyTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  void SetUp() override {
    std::mt19937 rng(GetParam());
    std::uniform_int_distribution<int> key(0, 9);
    std::uniform_int_distribution<int> val(-50, 50);
    std::uniform_int_distribution<int> null_pct(0, 9);

    MustExecute(&db_, "CREATE TABLE a (k INTEGER, v INTEGER)");
    MustExecute(&db_, "CREATE TABLE b (k INTEGER, w INTEGER)");
    auto insert = [&](const char* table, int rows) {
      std::string sql = StrCat("INSERT INTO ", table, " VALUES ");
      for (int i = 0; i < rows; ++i) {
        if (i > 0) sql += ", ";
        bool null_key = null_pct(rng) == 0;
        sql += StrCat("(", null_key ? "NULL" : StrCat(key(rng)), ", ",
                      val(rng), ")");
      }
      MustExecute(&db_, sql);
    };
    insert("a", 40);
    insert("b", 25);
  }

  int64_t Scalar(const std::string& sql) {
    ResultSet rs = MustQuery(&db_, sql);
    EXPECT_EQ(rs.num_rows(), 1u) << sql;
    return rs.Get(0, 0).is_null() ? 0 : rs.Get(0, 0).int_val();
  }

  Engine db_;
};

TEST_P(ExecPropertyTest, InnerJoinIsCommutative) {
  int64_t ab = Scalar(
      "SELECT COUNT(*) FROM a JOIN b ON a.k = b.k");
  int64_t ba = Scalar(
      "SELECT COUNT(*) FROM b JOIN a ON a.k = b.k");
  EXPECT_EQ(ab, ba);
}

TEST_P(ExecPropertyTest, HashAndNestedLoopJoinsAgree) {
  // `a.k = b.k` takes the hash path; wrapping one side in an arithmetic
  // no-op that still references both sides forces the nested loop.
  int64_t hash = Scalar("SELECT COUNT(*) FROM a JOIN b ON a.k = b.k");
  int64_t nested = Scalar(
      "SELECT COUNT(*) FROM a JOIN b ON a.k <= b.k AND a.k >= b.k");
  EXPECT_EQ(hash, nested);
}

TEST_P(ExecPropertyTest, OuterJoinContainment) {
  int64_t inner = Scalar("SELECT COUNT(*) FROM a JOIN b ON a.k = b.k");
  int64_t left = Scalar("SELECT COUNT(*) FROM a LEFT JOIN b ON a.k = b.k");
  int64_t right = Scalar("SELECT COUNT(*) FROM a RIGHT JOIN b ON a.k = b.k");
  int64_t full = Scalar("SELECT COUNT(*) FROM a FULL JOIN b ON a.k = b.k");
  EXPECT_GE(left, inner);
  EXPECT_GE(right, inner);
  EXPECT_GE(full, left);
  EXPECT_GE(full, right);
  // FULL = INNER + left-unmatched + right-unmatched.
  int64_t na = Scalar("SELECT COUNT(*) FROM a");
  int64_t nb = Scalar("SELECT COUNT(*) FROM b");
  int64_t left_unmatched = left - inner;
  int64_t right_unmatched = right - inner;
  EXPECT_EQ(full, inner + left_unmatched + right_unmatched);
  EXPECT_LE(left_unmatched, na);
  EXPECT_LE(right_unmatched, nb);
}

TEST_P(ExecPropertyTest, CrossJoinCardinality) {
  int64_t na = Scalar("SELECT COUNT(*) FROM a");
  int64_t nb = Scalar("SELECT COUNT(*) FROM b");
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM a, b"), na * nb);
}

TEST_P(ExecPropertyTest, FilterPartitionsRows) {
  int64_t all = Scalar("SELECT COUNT(*) FROM a");
  int64_t pos = Scalar("SELECT COUNT(*) FROM a WHERE v > 0");
  int64_t nonpos = Scalar("SELECT COUNT(*) FROM a WHERE v <= 0");
  int64_t null_v = Scalar("SELECT COUNT(*) FROM a WHERE v IS NULL");
  EXPECT_EQ(all, pos + nonpos + null_v);
}

TEST_P(ExecPropertyTest, UnionAllAddsCardinalities) {
  int64_t na = Scalar("SELECT COUNT(*) FROM a");
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM "
                   "(SELECT k FROM a UNION ALL SELECT k FROM a) AS u"),
            2 * na);
  // UNION removes duplicates: at most the distinct count.
  int64_t distinct = Scalar("SELECT COUNT(*) FROM "
                            "(SELECT DISTINCT k FROM a) AS d");
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM "
                   "(SELECT k FROM a UNION SELECT k FROM a) AS u"),
            distinct);
}

TEST_P(ExecPropertyTest, GroupSumsEqualTotal) {
  ResultSet rs = MustQuery(&db_, "SELECT k, SUM(v) AS s FROM a GROUP BY k");
  int64_t total = 0;
  for (const Row& r : rs.rows()) {
    if (!r[1].is_null()) total += r[1].int_val();
  }
  EXPECT_EQ(total, Scalar("SELECT COALESCE(SUM(v), 0) FROM a"));
}

TEST_P(ExecPropertyTest, HavingIsFilterOverGroups) {
  int64_t groups =
      Scalar("SELECT COUNT(*) FROM (SELECT k FROM a GROUP BY k) AS g");
  int64_t kept = Scalar(
      "SELECT COUNT(*) FROM "
      "(SELECT k FROM a GROUP BY k HAVING COUNT(*) >= 2) AS g");
  EXPECT_LE(kept, groups);
}

TEST_P(ExecPropertyTest, DistinctIdempotent) {
  int64_t once = Scalar(
      "SELECT COUNT(*) FROM (SELECT DISTINCT k, v FROM a) AS d");
  int64_t twice = Scalar(
      "SELECT COUNT(*) FROM (SELECT DISTINCT k, v FROM "
      "(SELECT DISTINCT k, v FROM a) AS d1) AS d2");
  EXPECT_EQ(once, twice);
}

TEST_P(ExecPropertyTest, OrderByIsAPermutation) {
  ResultSet sorted = MustQuery(&db_, "SELECT v FROM a ORDER BY v NULLS LAST");
  ResultSet raw = MustQuery(&db_, "SELECT v FROM a");
  ASSERT_EQ(sorted.num_rows(), raw.num_rows());
  // Sorted is non-decreasing (NULLs at the end).
  for (size_t i = 1; i < sorted.num_rows(); ++i) {
    const Value& prev = sorted.Get(i - 1, 0);
    const Value& cur = sorted.Get(i, 0);
    if (prev.is_null()) {
      EXPECT_TRUE(cur.is_null());
    } else if (!cur.is_null()) {
      EXPECT_LE(prev.int_val(), cur.int_val());
    }
  }
  // Same multiset: equal sums and counts.
  int64_t s1 = 0, s2 = 0;
  for (size_t i = 0; i < raw.num_rows(); ++i) {
    if (!raw.Get(i, 0).is_null()) s1 += raw.Get(i, 0).int_val();
    if (!sorted.Get(i, 0).is_null()) s2 += sorted.Get(i, 0).int_val();
  }
  EXPECT_EQ(s1, s2);
}

TEST_P(ExecPropertyTest, WindowSumMatchesGroupSum) {
  ResultSet win = MustQuery(&db_, R"sql(
    SELECT DISTINCT k, SUM(v) OVER (PARTITION BY k) AS s FROM a
  )sql");
  ResultSet grp = MustQuery(&db_,
      "SELECT k, SUM(v) AS s FROM a GROUP BY k");
  // Row order is unspecified on both sides; the oracle's normalized
  // comparison sorts before matching.
  EXPECT_TRUE(testing::ResultsAgree(win, grp));
}

TEST_P(ExecPropertyTest, SubqueryCacheTransparent) {
  const char* q =
      "SELECT a.k, (SELECT SUM(b.w) FROM b WHERE b.k = a.k) AS s "
      "FROM a ORDER BY a.k NULLS LAST, s NULLS LAST";
  db_.options().memoize_subqueries = true;
  ResultSet cached = MustQuery(&db_, q);
  db_.options().memoize_subqueries = false;
  ResultSet fresh = MustQuery(&db_, q);
  EXPECT_TRUE(testing::ResultsAgree(cached, fresh));
}

TEST_P(ExecPropertyTest, RowAndVectorizedModesAgree) {
  // The vectorized operators must be invisible: every query returns the
  // same rows under ExecMode::kVectorized and ExecMode::kRow, including
  // three-valued WHERE logic and NULL group keys (grouped by IS NOT
  // DISTINCT FROM semantics).
  const char* queries[] = {
      "SELECT k, COUNT(*) AS c, SUM(v) AS s, MIN(v) AS lo, MAX(v) AS hi, "
      "AVG(v) AS m FROM a GROUP BY k",
      "SELECT COUNT(*) FROM a WHERE (v > 0 AND k < 5) OR k IS NULL",
      "SELECT k, (v + 1) * 2 AS e, v / 4.0 AS q FROM a "
      "WHERE v <= 10 OR v IS NULL",
      "SELECT COUNT(*) FROM a JOIN b ON a.k = b.k WHERE a.v < b.w OR b.w < 0",
      "SELECT k FROM a WHERE NOT (v > 0) ORDER BY k NULLS LAST, v NULLS LAST",
  };
  for (const char* q : queries) {
    db_.options().exec_mode = ExecMode::kVectorized;
    ResultSet vec = MustQuery(&db_, q);
    db_.options().exec_mode = ExecMode::kRow;
    ResultSet row = MustQuery(&db_, q);
    db_.options().exec_mode = ExecMode::kVectorized;
    EXPECT_TRUE(testing::ResultsAgree(vec, row)) << q;
    // Row mode is a configuration, not a fallback: it must never count
    // batches. Vectorized mode must actually engage on these shapes.
    ASSERT_NE(row.stats(), nullptr);
    EXPECT_EQ(row.stats()->exec_vectorized_batches, 0u) << q;
    ASSERT_NE(vec.stats(), nullptr);
    EXPECT_GT(vec.stats()->exec_vectorized_batches, 0u) << q;
  }
}

// Direct kernel-vs-Evaluator agreement on hand-built columnar batches. The
// batch spans several 1024-row boundaries and every column carries NULLs.
class VectorKernelTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  void SetUp() override {
    std::mt19937 rng(GetParam());
    std::uniform_int_distribution<int> pct(0, 99);
    std::uniform_int_distribution<int> small(-6, 6);
    std::uniform_int_distribution<int> word(0, 3);
    const char* words[] = {"alpha", "beta", "gamma", ""};

    rel_ = std::make_shared<Relation>();
    rel_->schema = Schema({Column("p", DataType::Bool()),
                           Column("q", DataType::Bool()),
                           Column("x", DataType::Int64()),
                           Column("y", DataType::Int64()),
                           Column("d", DataType::Double()),
                           Column("s", DataType::String()),
                           Column("t", DataType::String())});
    const int64_t n = 2 * kRowsPerBatch + 37;
    std::vector<Row> rows;
    auto maybe = [&](Value v) { return pct(rng) < 20 ? Value::Null() : v; };
    for (int64_t i = 0; i < n; ++i) {
      Row r;
      r.push_back(maybe(Value::Bool(pct(rng) < 50)));
      r.push_back(maybe(Value::Bool(pct(rng) < 50)));
      r.push_back(maybe(Value::Int(small(rng))));
      r.push_back(maybe(Value::Int(small(rng))));
      r.push_back(maybe(Value::Double(small(rng) * 0.5)));
      r.push_back(maybe(Value::String(words[word(rng)])));
      r.push_back(maybe(Value::String(words[word(rng)])));
      rows.push_back(std::move(r));
    }
    auto built = ColumnarizeRows(rel_->schema.size(), rows,
                                 std::make_shared<Arena>());
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    rel_->columns = built.take();
    ASSERT_TRUE(rel_->columns->Complete());
    rel_->rows = std::move(rows);
  }

  BoundExprPtr Col(int i) {
    return BColumnRef(0, i, rel_->schema.column(i).name,
                      rel_->schema.column(i).type);
  }

  // Evaluates `e` both ways and requires bit-for-bit agreement on every row.
  void ExpectAgreement(const BoundExpr& e) {
    ExecState state;
    ASSERT_EQ(VectorizedGate(&state), VectorGate::kOk);
    auto col = EvalVector(e, *rel_, std::make_shared<Arena>(), &state);
    ASSERT_TRUE(col.ok()) << e.ToString() << ": " << col.status().ToString();
    ColumnPtr c = col.take();
    ASSERT_NE(c, nullptr) << e.ToString() << ": no kernel covered this";

    Evaluator scalar(&state);
    for (size_t i = 0; i < rel_->rows.size(); ++i) {
      RowStack stack = {
          Frame{&rel_->rows[i], static_cast<int64_t>(i), rel_.get()}};
      auto want = scalar.Eval(e, stack);
      ASSERT_TRUE(want.ok()) << e.ToString();
      const Value got = c->At(static_cast<int64_t>(i));
      EXPECT_TRUE(Value::NotDistinct(want.value(), got))
          << e.ToString() << " row " << i << ": scalar "
          << want.value().ToString() << " vs vector " << got.ToString();
      if (!want.value().is_null()) {
        EXPECT_EQ(static_cast<int>(want.value().kind()),
                  static_cast<int>(got.kind()))
            << e.ToString() << " row " << i << ": result kind drifted";
      }
    }
  }

  BoundExprPtr Fn(FunctionId id, const char* name, DataType type,
                  BoundExprPtr a, BoundExprPtr b = nullptr) {
    std::vector<BoundExprPtr> args;
    args.push_back(std::move(a));
    if (b != nullptr) args.push_back(std::move(b));
    return BFunc(id, name, type, std::move(args));
  }

  std::shared_ptr<Relation> rel_;
};

TEST_P(VectorKernelTest, KleeneAndOrNotAgreeWithScalarEvaluator) {
  ExpectAgreement(
      *Fn(FunctionId::kOpAnd, "AND", DataType::Bool(), Col(0), Col(1)));
  ExpectAgreement(
      *Fn(FunctionId::kOpOr, "OR", DataType::Bool(), Col(0), Col(1)));
  ExpectAgreement(*Fn(FunctionId::kOpNot, "NOT", DataType::Bool(), Col(0)));
  // Nested: NOT(p AND q) OR p exercises validity-bit plumbing through trees.
  ExpectAgreement(*Fn(
      FunctionId::kOpOr, "OR", DataType::Bool(),
      Fn(FunctionId::kOpNot, "NOT", DataType::Bool(),
         Fn(FunctionId::kOpAnd, "AND", DataType::Bool(), Col(0), Col(1))),
      Col(0)));
}

TEST_P(VectorKernelTest, DistinctFromAgreesWithScalarEvaluator) {
  for (auto [a, b] : {std::pair<int, int>{2, 3},   // int vs int
                      std::pair<int, int>{2, 4},   // int vs double
                      std::pair<int, int>{5, 6},   // string vs string
                      std::pair<int, int>{0, 1},   // bool vs bool
                      std::pair<int, int>{5, 2}})  // string vs int
  {
    ExpectAgreement(*Fn(FunctionId::kOpIsNotDistinctFrom,
                        "IS NOT DISTINCT FROM", DataType::Bool(), Col(a),
                        Col(b)));
    ExpectAgreement(*Fn(FunctionId::kOpIsDistinctFrom, "IS DISTINCT FROM",
                        DataType::Bool(), Col(a), Col(b)));
  }
}

TEST_P(VectorKernelTest, ComparisonsAgreeWithScalarEvaluator) {
  for (auto [a, b] : {std::pair<int, int>{2, 3}, std::pair<int, int>{2, 4},
                      std::pair<int, int>{5, 6}}) {
    ExpectAgreement(
        *Fn(FunctionId::kOpEq, "=", DataType::Bool(), Col(a), Col(b)));
    ExpectAgreement(
        *Fn(FunctionId::kOpNe, "<>", DataType::Bool(), Col(a), Col(b)));
    ExpectAgreement(
        *Fn(FunctionId::kOpLt, "<", DataType::Bool(), Col(a), Col(b)));
    ExpectAgreement(
        *Fn(FunctionId::kOpGe, ">=", DataType::Bool(), Col(a), Col(b)));
  }
}

TEST_P(VectorKernelTest, ArithmeticAgreesWithScalarEvaluator) {
  ExpectAgreement(
      *Fn(FunctionId::kOpAdd, "+", DataType::Int64(), Col(2), Col(3)));
  ExpectAgreement(
      *Fn(FunctionId::kOpSub, "-", DataType::Int64(), Col(2), Col(3)));
  ExpectAgreement(
      *Fn(FunctionId::kOpMul, "*", DataType::Double(), Col(2), Col(4)));
  ExpectAgreement(*Fn(FunctionId::kOpNeg, "-", DataType::Int64(), Col(2)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorKernelTest,
                         ::testing::Values(7u, 42u, 4096u));

INSTANTIATE_TEST_SUITE_P(Seeds, ExecPropertyTest,
                         ::testing::Values(3u, 17u, 2024u));

}  // namespace
}  // namespace msql

// Integration tests for the relational core: scans, filters, projections,
// joins, sorting, limits, set operations, subqueries, NULL semantics and the
// scalar function library.

#include "engine/engine.h"
#include "gtest/gtest.h"
#include "tests/paper_fixture.h"

namespace msql {
namespace {

class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(&db_, R"sql(
      CREATE TABLE nums (i INTEGER, d DOUBLE, s VARCHAR);
      INSERT INTO nums VALUES
        (1, 1.5, 'one'), (2, 2.5, 'two'), (3, NULL, 'three'),
        (NULL, 4.5, NULL), (5, 5.5, 'five');
      CREATE TABLE dept (id INTEGER, dname VARCHAR);
      INSERT INTO dept VALUES (1, 'eng'), (2, 'sales');
      CREATE TABLE emp (eid INTEGER, ename VARCHAR, dept_id INTEGER);
      INSERT INTO emp VALUES
        (10, 'ann', 1), (11, 'bob', 1), (12, 'cat', 2), (13, 'dan', NULL);
    )sql");
  }
  Engine db_;
};

TEST_F(ExecTest, SelectConstant) {
  ResultSet rs = MustQuery(&db_, "SELECT 1 + 1 AS two, 'x' AS s");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.Get(0, "two").int_val(), 2);
  EXPECT_EQ(rs.Get(0, "s").str(), "x");
}

TEST_F(ExecTest, WhereFilter) {
  ResultSet rs = MustQuery(&db_, "SELECT i FROM nums WHERE i >= 2");
  EXPECT_EQ(rs.num_rows(), 3u);  // NULL i is filtered out
}

TEST_F(ExecTest, NullComparisonsAreUnknown) {
  // NULL = NULL is unknown -> row filtered.
  ResultSet rs = MustQuery(&db_, "SELECT i FROM nums WHERE d = NULL");
  EXPECT_EQ(rs.num_rows(), 0u);
  ResultSet rs2 = MustQuery(&db_, "SELECT i FROM nums WHERE d IS NULL");
  EXPECT_EQ(rs2.num_rows(), 1u);
  ResultSet rs3 =
      MustQuery(&db_, "SELECT i FROM nums WHERE d IS NOT DISTINCT FROM NULL");
  EXPECT_EQ(rs3.num_rows(), 1u);
}

TEST_F(ExecTest, ThreeValuedLogic) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT (NULL AND FALSE) AS a, (NULL AND TRUE) AS b,
           (NULL OR TRUE) AS c, (NULL OR FALSE) AS d, (NOT NULL) AS e
  )sql");
  EXPECT_FALSE(rs.Get(0, "a").bool_val());
  EXPECT_TRUE(rs.Get(0, "b").is_null());
  EXPECT_TRUE(rs.Get(0, "c").bool_val());
  EXPECT_TRUE(rs.Get(0, "d").is_null());
  EXPECT_TRUE(rs.Get(0, "e").is_null());
}

TEST_F(ExecTest, InListWithNulls) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT (1 IN (1, 2)) AS a, (3 IN (1, NULL)) AS b,
           (3 NOT IN (1, NULL)) AS c, (1 NOT IN (2, 3)) AS d
  )sql");
  EXPECT_TRUE(rs.Get(0, "a").bool_val());
  EXPECT_TRUE(rs.Get(0, "b").is_null());
  EXPECT_TRUE(rs.Get(0, "c").is_null());
  EXPECT_TRUE(rs.Get(0, "d").bool_val());
}

TEST_F(ExecTest, InnerJoin) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT e.ename, d.dname FROM emp AS e
    JOIN dept AS d ON e.dept_id = d.id
    ORDER BY ename
  )sql");
  ASSERT_EQ(rs.num_rows(), 3u);  // dan has NULL dept
  EXPECT_EQ(rs.Get(0, "ename").str(), "ann");
  EXPECT_EQ(rs.Get(0, "dname").str(), "eng");
}

TEST_F(ExecTest, LeftJoin) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT e.ename, d.dname FROM emp AS e
    LEFT JOIN dept AS d ON e.dept_id = d.id
    ORDER BY ename
  )sql");
  ASSERT_EQ(rs.num_rows(), 4u);
  EXPECT_EQ(rs.Get(3, "ename").str(), "dan");
  EXPECT_TRUE(rs.Get(3, "dname").is_null());
}

TEST_F(ExecTest, RightJoin) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT e.ename, d.dname FROM emp AS e
    RIGHT JOIN dept AS d ON e.dept_id = d.id AND e.eid > 11
    ORDER BY dname, ename
  )sql");
  // eng has no emp with eid > 11 -> preserved with NULL ename.
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_TRUE(rs.Get(0, "ename").is_null());
  EXPECT_EQ(rs.Get(0, "dname").str(), "eng");
  EXPECT_EQ(rs.Get(1, "ename").str(), "cat");
}

TEST_F(ExecTest, FullOuterJoin) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT e.ename, d.dname FROM emp AS e
    FULL JOIN dept AS d ON e.dept_id = d.id
    ORDER BY ename NULLS LAST
  )sql");
  // 3 matches + dan (NULL dept) preserved; both depts matched.
  ASSERT_EQ(rs.num_rows(), 4u);
  EXPECT_EQ(rs.Get(3, "ename").str(), "dan");
  EXPECT_TRUE(rs.Get(3, "dname").is_null());

  MustExecute(&db_, "INSERT INTO dept VALUES (9, 'legal')");
  ResultSet rs2 = MustQuery(&db_, R"sql(
    SELECT e.ename, d.dname FROM emp AS e
    FULL JOIN dept AS d ON e.dept_id = d.id
  )sql");
  EXPECT_EQ(rs2.num_rows(), 5u);  // + unmatched legal with NULL ename
}

TEST_F(ExecTest, CrossJoin) {
  ResultSet rs = MustQuery(&db_, "SELECT * FROM dept AS a, dept AS b");
  EXPECT_EQ(rs.num_rows(), 4u);
}

TEST_F(ExecTest, JoinUsing) {
  MustExecute(&db_, R"sql(
    CREATE TABLE l (k INTEGER, x VARCHAR);
    INSERT INTO l VALUES (1, 'a'), (2, 'b');
    CREATE TABLE r (k INTEGER, y VARCHAR);
    INSERT INTO r VALUES (2, 'B'), (3, 'C');
  )sql");
  ResultSet rs = MustQuery(&db_,
                           "SELECT k, x, y FROM l JOIN r USING (k)");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.Get(0, "k").int_val(), 2);
  EXPECT_EQ(rs.Get(0, "x").str(), "b");
  EXPECT_EQ(rs.Get(0, "y").str(), "B");
}

TEST_F(ExecTest, NonEquiJoinFallsBackToNestedLoop) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT a.i, b.i FROM nums AS a JOIN nums AS b ON a.i < b.i
  )sql");
  // Pairs among {1,2,3,5}: C(4,2) = 6.
  EXPECT_EQ(rs.num_rows(), 6u);
}

TEST_F(ExecTest, OrderByNullsPlacement) {
  ResultSet asc = MustQuery(&db_, "SELECT i FROM nums ORDER BY i");
  EXPECT_TRUE(asc.Get(0, "i").is_null());  // NULLS FIRST by default asc
  ResultSet desc = MustQuery(&db_, "SELECT i FROM nums ORDER BY i DESC");
  EXPECT_TRUE(desc.Get(desc.num_rows() - 1, "i").is_null());
  ResultSet forced =
      MustQuery(&db_, "SELECT i FROM nums ORDER BY i NULLS LAST");
  EXPECT_TRUE(forced.Get(forced.num_rows() - 1, "i").is_null());
}

TEST_F(ExecTest, LimitOffset) {
  ResultSet rs =
      MustQuery(&db_, "SELECT i FROM nums ORDER BY i NULLS LAST LIMIT 2 OFFSET 1");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.Get(0, "i").int_val(), 2);
  EXPECT_EQ(rs.Get(1, "i").int_val(), 3);
}

TEST_F(ExecTest, Distinct) {
  MustExecute(&db_, "CREATE TABLE dup (x INTEGER); "
                    "INSERT INTO dup VALUES (1), (1), (2), (NULL), (NULL)");
  ResultSet rs = MustQuery(&db_, "SELECT DISTINCT x FROM dup ORDER BY x");
  EXPECT_EQ(rs.num_rows(), 3u);  // NULLs collapse
}

TEST_F(ExecTest, SetOperations) {
  ResultSet u = MustQuery(&db_,
      "SELECT 1 AS x UNION ALL SELECT 1 UNION ALL SELECT 2");
  EXPECT_EQ(u.num_rows(), 3u);
  ResultSet ud = MustQuery(&db_, "SELECT 1 AS x UNION SELECT 1 UNION SELECT 2");
  EXPECT_EQ(ud.num_rows(), 2u);
  ResultSet ex = MustQuery(&db_,
      "SELECT i FROM nums WHERE i IS NOT NULL EXCEPT SELECT 2 AS i");
  EXPECT_EQ(ex.num_rows(), 3u);
  ResultSet in = MustQuery(&db_,
      "SELECT i FROM nums INTERSECT SELECT 2 AS i");
  EXPECT_EQ(in.num_rows(), 1u);
}

TEST_F(ExecTest, CorrelatedScalarSubquery) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT d.dname,
           (SELECT COUNT(*) FROM emp AS e WHERE e.dept_id = d.id) AS n
    FROM dept AS d ORDER BY dname
  )sql");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.Get(0, "n").int_val(), 2);  // eng
  EXPECT_EQ(rs.Get(1, "n").int_val(), 1);  // sales
}

TEST_F(ExecTest, ExistsAndInSubquery) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT dname FROM dept AS d
    WHERE EXISTS (SELECT 1 FROM emp AS e WHERE e.dept_id = d.id AND e.eid > 11)
  )sql");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.Get(0, "dname").str(), "sales");

  ResultSet in = MustQuery(&db_, R"sql(
    SELECT ename FROM emp WHERE dept_id IN (SELECT id FROM dept WHERE dname = 'eng')
    ORDER BY ename
  )sql");
  EXPECT_EQ(in.num_rows(), 2u);
}

TEST_F(ExecTest, ScalarSubqueryCardinalityError) {
  auto r = db_.Query("SELECT (SELECT i FROM nums) AS x");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kExecution);
}

TEST_F(ExecTest, CaseExpressions) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT i,
           CASE WHEN i < 2 THEN 'low' WHEN i < 4 THEN 'mid' ELSE 'high' END AS b,
           CASE i WHEN 1 THEN 'one' ELSE 'other' END AS c
    FROM nums WHERE i IS NOT NULL ORDER BY i
  )sql");
  EXPECT_EQ(rs.Get(0, "b").str(), "low");
  EXPECT_EQ(rs.Get(1, "b").str(), "mid");
  EXPECT_EQ(rs.Get(3, "b").str(), "high");
  EXPECT_EQ(rs.Get(0, "c").str(), "one");
  EXPECT_EQ(rs.Get(1, "c").str(), "other");
}

TEST_F(ExecTest, ScalarFunctions) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT ABS(-5) AS a, FLOOR(2.7) AS f, CEIL(2.2) AS c, ROUND(2.456, 2) AS r,
           MOD(7, 3) AS m, POWER(2, 10) AS p, SQRT(16.0) AS q,
           UPPER('ab') AS u, LOWER('AB') AS l, LENGTH('abc') AS len,
           SUBSTR('hello', 2, 3) AS sub, CONCAT('a', 1, 'b') AS cc,
           TRIM('  x ') AS t, REPLACE('aXbX', 'X', 'y') AS rep,
           COALESCE(NULL, NULL, 3) AS co, NULLIF(2, 2) AS ni,
           IF(TRUE, 'y', 'n') AS iff, GREATEST(1, 9, 4) AS g, LEAST(3, 2) AS le,
           SIGN(-2.5) AS sg, 'a' || 'b' AS cat
  )sql");
  EXPECT_EQ(rs.Get(0, "a").int_val(), 5);
  EXPECT_DOUBLE_EQ(rs.Get(0, "f").double_val(), 2.0);
  EXPECT_DOUBLE_EQ(rs.Get(0, "c").double_val(), 3.0);
  EXPECT_DOUBLE_EQ(rs.Get(0, "r").double_val(), 2.46);
  EXPECT_EQ(rs.Get(0, "m").int_val(), 1);
  EXPECT_DOUBLE_EQ(rs.Get(0, "p").double_val(), 1024.0);
  EXPECT_DOUBLE_EQ(rs.Get(0, "q").double_val(), 4.0);
  EXPECT_EQ(rs.Get(0, "u").str(), "AB");
  EXPECT_EQ(rs.Get(0, "l").str(), "ab");
  EXPECT_EQ(rs.Get(0, "len").int_val(), 3);
  EXPECT_EQ(rs.Get(0, "sub").str(), "ell");
  EXPECT_EQ(rs.Get(0, "cc").str(), "a1b");
  EXPECT_EQ(rs.Get(0, "t").str(), "x");
  EXPECT_EQ(rs.Get(0, "rep").str(), "ayby");
  EXPECT_EQ(rs.Get(0, "co").int_val(), 3);
  EXPECT_TRUE(rs.Get(0, "ni").is_null());
  EXPECT_EQ(rs.Get(0, "iff").str(), "y");
  EXPECT_EQ(rs.Get(0, "g").int_val(), 9);
  EXPECT_EQ(rs.Get(0, "le").int_val(), 2);
  EXPECT_EQ(rs.Get(0, "sg").int_val(), -1);
  EXPECT_EQ(rs.Get(0, "cat").str(), "ab");
}

TEST_F(ExecTest, DateFunctions) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT YEAR(DATE '2023-11-28') AS y, MONTH(DATE '2023-11-28') AS m,
           DAY(DATE '2023-11-28') AS d, QUARTER(DATE '2023-11-28') AS q,
           DAYOFWEEK(DATE '2023-11-28') AS dw,
           DATE '2023-11-28' + 3 AS plus,
           DATE '2023-11-28' - DATE '2023-11-25' AS diff
  )sql");
  EXPECT_EQ(rs.Get(0, "y").int_val(), 2023);
  EXPECT_EQ(rs.Get(0, "m").int_val(), 11);
  EXPECT_EQ(rs.Get(0, "d").int_val(), 28);
  EXPECT_EQ(rs.Get(0, "q").int_val(), 4);
  EXPECT_EQ(rs.Get(0, "dw").int_val(), 3);
  EXPECT_EQ(rs.Get(0, "plus").ToString(), "2023-12-01");
  EXPECT_EQ(rs.Get(0, "diff").int_val(), 3);
}

TEST_F(ExecTest, Like) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT ('hello' LIKE 'h%') AS a, ('hello' LIKE '%ell%') AS b,
           ('hello' LIKE 'h_llo') AS c, ('hello' LIKE 'x%') AS d,
           ('hello' NOT LIKE 'x%') AS e, ('' LIKE '%') AS f
  )sql");
  EXPECT_TRUE(rs.Get(0, "a").bool_val());
  EXPECT_TRUE(rs.Get(0, "b").bool_val());
  EXPECT_TRUE(rs.Get(0, "c").bool_val());
  EXPECT_FALSE(rs.Get(0, "d").bool_val());
  EXPECT_TRUE(rs.Get(0, "e").bool_val());
  EXPECT_TRUE(rs.Get(0, "f").bool_val());
}

TEST_F(ExecTest, DivisionByZeroIsAnError) {
  auto r = db_.Query("SELECT 1 / 0");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kExecution);
}

TEST_F(ExecTest, IntegerVsDoubleArithmetic) {
  ResultSet rs = MustQuery(
      &db_, "SELECT 1 + 2 AS i, 1 + 2.5 AS d, 7 / 2 AS div, -3 * 2 AS neg");
  EXPECT_EQ(rs.Get(0, "i").kind(), TypeKind::kInt64);
  EXPECT_EQ(rs.Get(0, "d").kind(), TypeKind::kDouble);
  // Division is exact (DOUBLE), matching the paper's margin examples.
  EXPECT_DOUBLE_EQ(rs.Get(0, "div").double_val(), 3.5);
  EXPECT_EQ(rs.Get(0, "neg").int_val(), -6);
}

TEST_F(ExecTest, CteReuse) {
  ResultSet rs = MustQuery(&db_, R"sql(
    WITH big AS (SELECT i FROM nums WHERE i > 1)
    SELECT (SELECT COUNT(*) FROM big) AS n, i FROM big ORDER BY i
  )sql");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.Get(0, "n").int_val(), 3);
}

TEST_F(ExecTest, NestedSubqueryInFrom) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT t.x * 2 AS y FROM (SELECT i + 1 AS x FROM nums WHERE i = 1) AS t
  )sql");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.Get(0, "y").int_val(), 4);
}

TEST_F(ExecTest, AmbiguousColumnIsAnError) {
  auto r = db_.Query("SELECT id FROM dept AS a JOIN dept AS b ON a.id = b.id");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kBind);
}

TEST_F(ExecTest, UnknownColumnAndTable) {
  EXPECT_EQ(db_.Query("SELECT nope FROM nums").status().code(),
            ErrorCode::kBind);
  EXPECT_EQ(db_.Query("SELECT 1 FROM missing").status().code(),
            ErrorCode::kCatalog);
}

TEST_F(ExecTest, InsertColumnSubsetAndSelect) {
  MustExecute(&db_, "CREATE TABLE t2 (a INTEGER, b VARCHAR, c DOUBLE)");
  MustExecute(&db_, "INSERT INTO t2 (b, a) VALUES ('x', 1)");
  ResultSet rs = MustQuery(&db_, "SELECT * FROM t2");
  EXPECT_EQ(rs.Get(0, "a").int_val(), 1);
  EXPECT_EQ(rs.Get(0, "b").str(), "x");
  EXPECT_TRUE(rs.Get(0, "c").is_null());

  MustExecute(&db_, "INSERT INTO t2 SELECT i, s, d FROM nums WHERE i = 1");
  ResultSet rs2 = MustQuery(&db_, "SELECT COUNT(*) AS n FROM t2");
  EXPECT_EQ(rs2.Get(0, "n").int_val(), 2);
}

TEST_F(ExecTest, InsertTypeCoercion) {
  MustExecute(&db_, "CREATE TABLE t3 (a DOUBLE, d DATE)");
  MustExecute(&db_, "INSERT INTO t3 VALUES (1, '2024-01-15')");
  ResultSet rs = MustQuery(&db_, "SELECT a, YEAR(d) AS y FROM t3");
  EXPECT_EQ(rs.Get(0, "a").kind(), TypeKind::kDouble);
  EXPECT_EQ(rs.Get(0, "y").int_val(), 2024);
}

}  // namespace
}  // namespace msql

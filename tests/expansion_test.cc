// Tests for the section 4.2 textual expansion: ExpandSql rewrites measure
// references into correlated scalar subqueries, and the rewritten SQL —
// which contains no measure constructs — produces the same results as the
// native measure evaluation.

#include "engine/engine.h"
#include "gtest/gtest.h"
#include "tests/paper_fixture.h"

namespace msql {
namespace {

class ExpansionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LoadPaperData(&db_);
    MustExecute(&db_, R"sql(
      CREATE VIEW EnhancedOrders AS
      SELECT orderDate, prodName, custName, revenue, cost,
             (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE profitMargin,
             SUM(revenue) AS MEASURE sumRevenue
      FROM Orders
    )sql");
  }

  // Expands `sql` and checks (a) the expansion contains no measure syntax,
  // (b) running both yields identical results.
  void CheckRoundTrip(const std::string& sql) {
    auto expanded = db_.ExpandSql(sql);
    ASSERT_TRUE(expanded.ok()) << expanded.status().ToString() << "\n  " << sql;
    const std::string& text = expanded.value();
    EXPECT_EQ(text.find("AGGREGATE"), std::string::npos) << text;
    EXPECT_EQ(text.find(" AT "), std::string::npos) << text;
    EXPECT_EQ(text.find("MEASURE"), std::string::npos) << text;

    ResultSet native = MustQuery(&db_, sql);
    ResultSet plain = MustQuery(&db_, text);
    ASSERT_EQ(native.num_rows(), plain.num_rows()) << text;
    ASSERT_EQ(native.num_columns(), plain.num_columns()) << text;
    for (size_t r = 0; r < native.num_rows(); ++r) {
      for (size_t c = 0; c < native.num_columns(); ++c) {
        const Value& a = native.Get(r, c);
        const Value& b = plain.Get(r, c);
        if (a.kind() == TypeKind::kDouble && b.kind() == TypeKind::kDouble) {
          EXPECT_NEAR(a.double_val(), b.double_val(), 1e-9) << text;
        } else {
          EXPECT_TRUE(Value::NotDistinct(a, b))
              << "row " << r << " col " << c << ": " << a.ToString() << " vs "
              << b.ToString() << "\n" << text;
        }
      }
    }
  }

  Engine db_;
};

TEST_F(ExpansionTest, Listing4ExpandsToListing5Shape) {
  auto expanded = db_.ExpandSql(R"sql(
    SELECT prodName, AGGREGATE(profitMargin) AS pm, COUNT(*) AS c
    FROM EnhancedOrders GROUP BY prodName
  )sql");
  ASSERT_TRUE(expanded.ok()) << expanded.status().ToString();
  // The expansion is a correlated scalar subquery over the base table with
  // the group key spelled out as a WHERE predicate (paper listing 5). The
  // correlation is NULL-safe: the engine's native context matches NULL
  // group keys to their rows, so the textual form must as well.
  EXPECT_NE(expanded.value().find("FROM Orders"), std::string::npos)
      << expanded.value();
  EXPECT_NE(expanded.value().find("(i.prodName IS NOT DISTINCT FROM o.prodName)"),
            std::string::npos)
      << expanded.value();
}

TEST_F(ExpansionTest, RoundTripAggregate) {
  CheckRoundTrip(
      "SELECT prodName, AGGREGATE(profitMargin) AS pm, COUNT(*) AS c "
      "FROM EnhancedOrders GROUP BY prodName ORDER BY prodName");
}

TEST_F(ExpansionTest, RoundTripBareMeasureIgnoresWhere) {
  CheckRoundTrip(
      "SELECT prodName, sumRevenue AS r, AGGREGATE(sumRevenue) AS rv "
      "FROM EnhancedOrders WHERE custName <> 'Bob' "
      "GROUP BY prodName ORDER BY prodName");
}

TEST_F(ExpansionTest, RoundTripAllDimension) {
  CheckRoundTrip(
      "SELECT prodName, sumRevenue / sumRevenue AT (ALL prodName) AS share "
      "FROM EnhancedOrders GROUP BY prodName ORDER BY prodName");
}

TEST_F(ExpansionTest, RoundTripAllEverything) {
  CheckRoundTrip(
      "SELECT prodName, sumRevenue AT (ALL) AS total "
      "FROM EnhancedOrders GROUP BY prodName ORDER BY prodName");
}

TEST_F(ExpansionTest, RoundTripSetConstant) {
  CheckRoundTrip(
      "SELECT prodName, sumRevenue AT (SET prodName = 'Acme') AS acme "
      "FROM EnhancedOrders GROUP BY prodName ORDER BY prodName");
}

TEST_F(ExpansionTest, RoundTripSetCurrentOverDerivedDim) {
  // Listing 10 shape: grouping by an expression and navigating with CURRENT
  // over its alias.
  CheckRoundTrip(
      "SELECT prodName, YEAR(orderDate) AS orderYear, "
      "       sumRevenue / sumRevenue AT "
      "         (SET orderYear = CURRENT orderYear - 1) AS ratio "
      "FROM EnhancedOrders GROUP BY prodName, YEAR(orderDate) "
      "ORDER BY prodName, orderYear");
}

TEST_F(ExpansionTest, RoundTripVisible) {
  CheckRoundTrip(
      "SELECT prodName, sumRevenue AT (VISIBLE) AS viz "
      "FROM EnhancedOrders WHERE custName <> 'Bob' "
      "GROUP BY prodName ORDER BY prodName");
}

TEST_F(ExpansionTest, RoundTripWhereModifier) {
  CheckRoundTrip(
      "SELECT prodName, sumRevenue AT (WHERE revenue >= 5) AS big "
      "FROM EnhancedOrders GROUP BY prodName ORDER BY prodName");
}

TEST_F(ExpansionTest, RoundTripInlineSubqueryProvider) {
  CheckRoundTrip(
      "SELECT prodName, AGGREGATE(r) AS total FROM "
      "(SELECT *, SUM(revenue) AS MEASURE r FROM Orders) AS o "
      "GROUP BY prodName ORDER BY prodName");
}

TEST_F(ExpansionTest, RoundTripBakedInWhere) {
  MustExecute(&db_, R"sql(
    CREATE VIEW Recent AS
    SELECT *, SUM(revenue) AS MEASURE r FROM Orders
    WHERE YEAR(orderDate) >= 2023
  )sql");
  CheckRoundTrip(
      "SELECT prodName, AGGREGATE(r) AS total, r AT (ALL) AS everything "
      "FROM Recent GROUP BY prodName ORDER BY prodName");
}

TEST_F(ExpansionTest, RoundTripHavingAndMeasureExpression) {
  CheckRoundTrip(
      "SELECT prodName, AGGREGATE(sumRevenue) * 2 AS dbl "
      "FROM EnhancedOrders GROUP BY prodName "
      "HAVING AGGREGATE(sumRevenue) > 4 ORDER BY prodName");
}

TEST_F(ExpansionTest, QueryWithoutMeasuresIsUnchanged) {
  const std::string sql = "SELECT prodName FROM Orders WHERE revenue > 3";
  auto expanded = db_.ExpandSql(sql);
  ASSERT_TRUE(expanded.ok());
  ResultSet a = MustQuery(&db_, sql);
  ResultSet b = MustQuery(&db_, expanded.value());
  EXPECT_EQ(a.num_rows(), b.num_rows());
}

TEST_F(ExpansionTest, JoinsFallBackToNative) {
  auto r = db_.ExpandSql(
      "SELECT o.prodName FROM EnhancedOrders AS o JOIN Customers AS c "
      "USING (custName) GROUP BY o.prodName");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotImplemented);
}

TEST_F(ExpansionTest, RollupFallsBackToNative) {
  auto r = db_.ExpandSql(
      "SELECT prodName, AGGREGATE(sumRevenue) FROM EnhancedOrders "
      "GROUP BY ROLLUP(prodName)");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotImplemented);
}

TEST_F(ExpansionTest, ExpansionOfNonSelectIsError) {
  auto r = db_.ExpandSql("CREATE TABLE t (x INTEGER)");
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace msql

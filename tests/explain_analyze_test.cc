// EXPLAIN / EXPLAIN ANALYZE rendering over the paper's fixtures: plain
// EXPLAIN annotates measure expansion per plan node; ANALYZE runs the query
// and adds per-operator actual rows / wall time / cache activity, including
// which expansion strategy fired (docs/OBSERVABILITY.md).

#include <string>
#include <vector>

#include "engine/engine.h"
#include "gtest/gtest.h"
#include "parser/parser.h"
#include "tests/paper_fixture.h"

namespace msql {
namespace {

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override { LoadPaperData(&db_); }

  // Runs EXPLAIN [ANALYZE] through the statement path and splices the
  // one-column result back into the rendered text.
  std::string Render(const std::string& stmt) {
    auto r = db_.Query(stmt);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\n  in: " << stmt;
    if (!r.ok()) return "";
    EXPECT_EQ(r.value().column_names(), std::vector<std::string>{"plan"});
    std::string text;
    for (size_t i = 0; i < r.value().num_rows(); ++i) {
      text += r.value().Get(i, 0).str();
      text += "\n";
    }
    return text;
  }

  // The line of `text` containing `needle` ("" when absent).
  static std::string LineWith(const std::string& text,
                              const std::string& needle) {
    size_t pos = text.find(needle);
    if (pos == std::string::npos) return "";
    size_t begin = text.rfind('\n', pos);
    begin = begin == std::string::npos ? 0 : begin + 1;
    size_t end = text.find('\n', pos);
    return text.substr(begin, end - begin);
  }

  Engine db_;
};

// Paper Listing 4: profitMargin measure over EnhancedOrders, grouped by
// product. 5 source rows aggregate into 3 product groups.
const char* kListing4 = R"sql(
  SELECT prodName, AGGREGATE(profitMargin) AS profitMargin, COUNT(*) AS c
  FROM (SELECT orderDate, prodName,
               (SUM(revenue) - SUM(cost)) / SUM(revenue)
               AS MEASURE profitMargin
        FROM Orders) AS EnhancedOrders
  GROUP BY prodName
  ORDER BY prodName
)sql";

// Paper Listing 8: VISIBLE totals under ROLLUP with a WHERE filter.
const char* kListing8 = R"sql(
  SELECT o.prodName,
         COUNT(*) AS c,
         AGGREGATE(o.sumRevenue) AS rAgg,
         o.sumRevenue AT (VISIBLE) AS rViz,
         o.sumRevenue AS r
  FROM (SELECT *, SUM(revenue) AS MEASURE sumRevenue
        FROM Orders) AS o
  WHERE o.custName <> 'Bob'
  GROUP BY ROLLUP(o.prodName)
)sql";

TEST_F(ExplainAnalyzeTest, PlainExplainAnnotatesExpansionWithoutRunning) {
  std::string text = Render(std::string("EXPLAIN ") + kListing4);
  // The defining node shows the measure formula it expands to.
  EXPECT_NE(text.find("expands=[profitMargin :="), std::string::npos);
  // The evaluating Aggregate shows the configured strategy (grouped is the
  // default).
  EXPECT_NE(text.find("measure_eval=grouped+inline"), std::string::npos);
  // Plain EXPLAIN never executes: no actuals, no summary.
  EXPECT_EQ(text.find("actual time="), std::string::npos);
  EXPECT_EQ(text.find("Execution:"), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, AnalyzeListing4ReportsPerOperatorActuals) {
  std::string text = Render(std::string("EXPLAIN ANALYZE ") + kListing4);

  // Every operator line carries actuals.
  EXPECT_NE(text.find("actual time="), std::string::npos);

  // The base scan saw the 5 Orders rows.
  std::string scan = LineWith(text, "Scan Orders");
  ASSERT_FALSE(scan.empty());
  EXPECT_NE(scan.find("rows=5"), std::string::npos) << scan;
  EXPECT_NE(scan.find("loops=1"), std::string::npos) << scan;

  // The Aggregate produced the 3 product groups and evaluated the measure
  // per group via the inline fast path (no source scans).
  std::string agg = LineWith(text, "Aggregate");
  ASSERT_FALSE(agg.empty());
  EXPECT_NE(agg.find("rows=3"), std::string::npos) << agg;
  EXPECT_NE(agg.find("[measures:"), std::string::npos) << agg;
  EXPECT_NE(agg.find("evals=3"), std::string::npos) << agg;
  EXPECT_NE(agg.find("fired=inline"), std::string::npos) << agg;
  EXPECT_NE(agg.find("measure_eval=grouped+inline"), std::string::npos)
      << agg;

  // The summary block reflects the whole query.
  EXPECT_NE(text.find("Execution: total="), std::string::npos);
  EXPECT_NE(text.find("rows_charged="), std::string::npos);
  EXPECT_NE(text.find("Measures: evals=3"), std::string::npos);
  EXPECT_NE(text.find("strategy=grouped+inline"), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, AnalyzeGroupedStrategyReportsBuildsAndProbes) {
  // A bare measure under GROUP BY produces one all-dimension context per
  // group; the grouped strategy partitions the source once and answers
  // each group with an index probe. ANALYZE attributes the build and the
  // per-group probes to the Aggregate operator.
  std::string text = Render(
      "EXPLAIN ANALYZE SELECT prodName, sumRevenue AS r "
      "FROM (SELECT *, SUM(revenue) AS MEASURE sumRevenue FROM Orders) AS o "
      "GROUP BY prodName ORDER BY prodName");
  std::string agg = LineWith(text, "[measures:");
  ASSERT_FALSE(agg.empty());
  EXPECT_NE(agg.find("grouped_builds=1"), std::string::npos) << agg;
  EXPECT_NE(agg.find("grouped_probes=3"), std::string::npos) << agg;
  EXPECT_NE(agg.find("fired=grouped"), std::string::npos) << agg;
  EXPECT_NE(agg.find("scans=0"), std::string::npos) << agg;
  EXPECT_NE(text.find("strategy=grouped+inline"), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, AnalyzeListing8CountsRollupGroupsAndScans) {
  std::string text = Render(std::string("EXPLAIN ANALYZE ") + kListing8);

  // 5 source rows scanned; the WHERE filter keeps 3 (Bob's 2 drop out).
  std::string scan = LineWith(text, "Scan Orders");
  ASSERT_FALSE(scan.empty());
  EXPECT_NE(scan.find("rows=5"), std::string::npos) << scan;
  std::string filter = LineWith(text, "Filter");
  ASSERT_FALSE(filter.empty());
  EXPECT_NE(filter.find("rows=3"), std::string::npos) << filter;

  // ROLLUP(prodName) over {Happy, Whizz}: 2 leaf groups + grand total.
  std::string agg = LineWith(text, "Aggregate");
  ASSERT_FALSE(agg.empty());
  EXPECT_NE(agg.find("rows=3"), std::string::npos) << agg;
  EXPECT_NE(agg.find("sets=2"), std::string::npos) << agg;

  // The bare measure (`o.sumRevenue AS r`) ignores the WHERE filter, so it
  // re-scans the measure source; ANALYZE attributes the scans.
  EXPECT_NE(text.find("scans="), std::string::npos);
  std::string measures = LineWith(text, "[measures:");
  ASSERT_FALSE(measures.empty());

  // Results were actually produced (ANALYZE executes the query).
  EXPECT_NE(text.find("Execution: total="), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, AnalyzeWithNaiveStrategyReportsScans) {
  db_.options().measure_strategy = MeasureStrategy::kNaive;
  db_.options().inline_visible_contexts = false;
  std::string text = Render(std::string("EXPLAIN ANALYZE ") + kListing4);
  EXPECT_NE(text.find("measure_eval=naive"), std::string::npos);
  // Without the inline fast path every evaluation scans the source.
  std::string agg = LineWith(text, "[measures:");
  ASSERT_FALSE(agg.empty());
  EXPECT_NE(agg.find("fired=scan"), std::string::npos) << agg;
  EXPECT_NE(text.find("strategy=naive"), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, AnalyzeResultMatchesDirectExecution) {
  // ANALYZE must not perturb results: the listing still returns its table.
  ResultSet direct = MustQuery(&db_, kListing4);
  ASSERT_EQ(direct.num_rows(), 3u);
  std::string text = Render(std::string("EXPLAIN ANALYZE ") + kListing4);
  EXPECT_NE(text.find("Execution:"), std::string::npos);
  ResultSet again = MustQuery(&db_, kListing4);
  ASSERT_EQ(again.num_rows(), 3u);
  for (size_t i = 0; i < direct.num_rows(); ++i) {
    for (size_t c = 0; c < direct.num_columns(); ++c) {
      EXPECT_TRUE(Value::NotDistinct(direct.Get(i, c), again.Get(i, c)));
    }
  }
}

TEST_F(ExplainAnalyzeTest, ExplainAnalyzeParsesAndRoundTrips) {
  auto stmt = Parser::Parse("EXPLAIN ANALYZE SELECT 1");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt.value()->explain_analyze);
  EXPECT_EQ(stmt.value()->ToString().rfind("EXPLAIN ANALYZE ", 0), 0u);
  auto plain = Parser::Parse("EXPLAIN SELECT 1");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain.value()->explain_analyze);
}

}  // namespace
}  // namespace msql

// Deterministic fault-injection sweep: run a paper-listing workload once
// with the injector counting checkpoints, then re-run it N times with the
// injected failure stepped across every checkpoint. Every run must fail
// with a clean Status (never crash, hang, or corrupt), and the engine must
// answer a correctness probe afterwards.

#include <poll.h>
#include <sys/socket.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "catalog/csv.h"
#include "common/fault_injection.h"
#include "engine/engine.h"
#include "gtest/gtest.h"
#include "net/client.h"
#include "net/server.h"
#include "runtime/retry.h"
#include "runtime/scheduler.h"

namespace msql {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Instance().Reset();
    csv_path_ = testing::TempDir() + "/msql_fault_orders.csv";
    out_path_ = testing::TempDir() + "/msql_fault_out.csv";
    std::ofstream out(csv_path_);
    out << "prodName,custName,revenue\n"
           "Happy,Alice,6\nAcme,Bob,5\nHappy,Alice,7\n"
           "Whizz,Celia,3\nHappy,Bob,4\n";
  }

  void TearDown() override {
    FaultInjector::Instance().Reset();
    std::remove(csv_path_.c_str());
    std::remove(out_path_.c_str());
  }

  // One full workload on a fresh engine: DDL, CSV import/export, measure
  // queries from the paper's listings, subqueries, and a DROP. Collects
  // every Status so the sweep can assert the injected fault surfaced.
  std::vector<Status> RunWorkload() {
    Engine db;
    std::vector<Status> statuses;
    auto exec = [&](const std::string& sql) {
      statuses.push_back(db.Execute(sql));
    };
    auto query = [&](const std::string& sql) {
      statuses.push_back(db.Query(sql).status());
    };

    statuses.push_back(db.ImportCsv("Orders", csv_path_));
    statuses.push_back(db.LoadCsv("Orders", csv_path_));
    exec("CREATE TABLE Customers (custName VARCHAR, custAge INTEGER)");
    exec("INSERT INTO Customers VALUES ('Alice', 23), ('Bob', 41), "
         "('Celia', 17)");
    exec("CREATE VIEW EO AS SELECT *, SUM(revenue) AS MEASURE r FROM Orders");
    // Paper listing shapes: plain AGGREGATE, AT modifiers, joins,
    // subqueries.
    query("SELECT prodName, AGGREGATE(r) FROM EO GROUP BY prodName");
    query("SELECT prodName, AGGREGATE(r) / (r AT (ALL)) AS frac "
          "FROM EO GROUP BY prodName");
    query("SELECT custName, AGGREGATE(r) FROM EO GROUP BY custName "
          "ORDER BY custName");
    // Bare measure under GROUP BY: all-dimension contexts drive the grouped
    // hash-index path and its measure.grouped_index_build checkpoint.
    query("SELECT prodName, r AS bare FROM EO GROUP BY prodName");
    query("SELECT c.custName, AGGREGATE(r) FROM EO o JOIN Customers c "
          "ON o.custName = c.custName GROUP BY c.custName");
    query("SELECT prodName FROM Orders WHERE revenue > "
          "(SELECT AVG(revenue) FROM Orders)");
    if (const auto e = db.catalog().Find("Orders");
        e != nullptr && e->table != nullptr) {
      statuses.push_back(WriteCsv(out_path_, *e->table));
    }
    exec("DROP VIEW EO");
    return statuses;
  }

  std::string csv_path_;
  std::string out_path_;
};

TEST_F(FaultInjectionTest, CheckpointsCoverTheWorkload) {
  auto& fi = FaultInjector::Instance();
  fi.ArmAt(0);  // count-only
  std::vector<Status> statuses = RunWorkload();
  int64_t n = fi.hits();
  fi.Reset();
  for (const Status& st : statuses) {
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  // The workload must cross a healthy number of checkpoints across layers
  // (statement dispatch, exec, subqueries, measures, catalog, CSV).
  EXPECT_GE(n, 30) << "checkpoint instrumentation has regressed";
}

TEST_F(FaultInjectionTest, SweepFailsCleanlyAtEveryCheckpoint) {
  auto& fi = FaultInjector::Instance();
  fi.ArmAt(0);
  (void)RunWorkload();
  const int64_t n = fi.hits();
  fi.Reset();
  ASSERT_GT(n, 0);

  for (int64_t i = 1; i <= n; ++i) {
    fi.ArmAt(i);
    std::vector<Status> statuses = RunWorkload();
    EXPECT_TRUE(fi.fired()) << "checkpoint " << i << " never reached";
    std::string fired_site = fi.fired_site();
    fi.Reset();

    // Exactly the injected failure must surface in some Status; cascading
    // follow-on failures (e.g. queries against a table whose import was
    // killed) are fine as long as they are clean Statuses too.
    int injected = 0;
    for (const Status& st : statuses) {
      if (!st.ok() &&
          st.message().find("injected fault") != std::string::npos) {
        ++injected;
      }
    }
    if (fired_site == "measure.grouped_index_build" ||
        fired_site == "runtime.shared_cache_fill" ||
        fired_site == "exec.vectorized_kernel") {
      // Degradable checkpoints: a grouped-index build fault falls back to
      // the per-context scan path, a shared-cache fill fault skips the
      // fill (the query still returns correct, uncached results), and a
      // vectorized-kernel fault drops the operator to row-at-a-time
      // execution. None may leak into a query Status.
      EXPECT_EQ(injected, 0)
          << "checkpoint " << i << " ('" << fired_site
          << "'): a degradable fault leaked into a query Status";
    } else {
      EXPECT_EQ(injected, 1)
          << "checkpoint " << i << " ('" << fired_site
          << "'): injected fault did not surface exactly once";
    }

    // The engine (a fresh one per run) must still work after the fault.
    Engine probe;
    ASSERT_TRUE(
        probe.Execute("CREATE TABLE T (x INTEGER); INSERT INTO T VALUES (1)")
            .ok());
    auto r = probe.Query("SELECT x + 1 FROM T");
    ASSERT_TRUE(r.ok()) << "after checkpoint " << i << ": "
                        << r.status().ToString();
    EXPECT_EQ(r.value().Get(0, 0).int_val(), 2);
  }
}

TEST_F(FaultInjectionTest, ObsSweepDegradesGracefully) {
  // With tracing and the slow-query log enabled, the workload crosses the
  // observability checkpoints (obs.trace_sink, obs.slow_log_write). A fault
  // injected there must NOT fail the query: trace publication degrades to a
  // bump of msql_obs_sink_errors_total. Faults at every other checkpoint
  // still surface exactly once as before.
  const std::string log_path = testing::TempDir() + "/msql_fault_slow.jsonl";
  struct RunResult {
    std::vector<Status> statuses;
    uint64_t sink_errors = 0;
  };
  auto run = [&]() {
    EngineOptions options;
    options.enable_tracing = true;
    options.slow_query_log_ms = 0;  // log every traced query
    options.slow_query_log_path = log_path;
    Engine db(options);
    RunResult result;
    result.statuses.push_back(db.ImportCsv("Orders", csv_path_));
    result.statuses.push_back(db.Execute(
        "CREATE VIEW EO AS SELECT *, SUM(revenue) AS MEASURE r FROM Orders"));
    result.statuses.push_back(
        db.Query("SELECT prodName, AGGREGATE(r) FROM EO GROUP BY prodName")
            .status());
    result.statuses.push_back(
        db.Query("SELECT custName, r AT (ALL) AS total FROM EO "
                 "GROUP BY custName")
            .status());
    if (obs::Counter* c = db.metrics().GetCounter("msql_obs_sink_errors_total");
        c != nullptr) {
      result.sink_errors = c->value();
    }
    return result;
  };

  auto& fi = FaultInjector::Instance();
  fi.ArmAt(0);  // count-only
  {
    RunResult clean = run();
    for (const Status& st : clean.statuses) {
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
    EXPECT_EQ(clean.sink_errors, 0u);
  }
  const int64_t n = fi.hits();
  fi.Reset();
  ASSERT_GT(n, 0);

  int obs_checkpoints = 0;
  for (int64_t i = 1; i <= n; ++i) {
    fi.ArmAt(i);
    RunResult result = run();
    EXPECT_TRUE(fi.fired()) << "checkpoint " << i << " never reached";
    const std::string fired_site = fi.fired_site();
    fi.Reset();

    int injected = 0;
    for (const Status& st : result.statuses) {
      if (!st.ok() &&
          st.message().find("injected fault") != std::string::npos) {
        ++injected;
      }
    }
    if (fired_site.rfind("obs.", 0) == 0) {
      // Observability faults degrade: no query fails, the error counter
      // records the dropped trace.
      ++obs_checkpoints;
      EXPECT_EQ(injected, 0)
          << "checkpoint " << i << " ('" << fired_site
          << "'): an observability fault leaked into a query Status";
      EXPECT_GE(result.sink_errors, 1u)
          << "checkpoint " << i << " ('" << fired_site
          << "'): sink failure was not counted";
    } else if (fired_site == "measure.grouped_index_build" ||
               fired_site == "runtime.shared_cache_fill" ||
               fired_site == "exec.vectorized_kernel") {
      // Degradable runtime checkpoints: the query proceeds on the
      // unoptimized path instead of failing.
      EXPECT_EQ(injected, 0)
          << "checkpoint " << i << " ('" << fired_site
          << "'): a degradable fault leaked into a query Status";
    } else {
      EXPECT_EQ(injected, 1)
          << "checkpoint " << i << " ('" << fired_site
          << "'): injected fault did not surface exactly once";
    }
  }
  // The traced workload crosses both trace-sink publication and the
  // slow-log write; losing these means the degradation path is untested.
  EXPECT_GE(obs_checkpoints, 2);
  std::remove(log_path.c_str());
}

TEST_F(FaultInjectionTest, GroupedIndexBuildFaultDegradesToScan) {
  // A fault while building the grouped hash index must never fail the
  // query: the evaluator caches the failure, falls back to the per-context
  // scan path, and bumps msql_measure_grouped_fallbacks_total.
  const char* sql =
      "SELECT prodName, r AS v FROM EO GROUP BY prodName ORDER BY prodName";
  // Fresh engine per run so the shared measure cache never short-circuits
  // the build checkpoint out of the run.
  auto run = [&](ResultSet* out, std::shared_ptr<const QueryStats>* stats) {
    Engine db;
    Status import = db.ImportCsv("Orders", csv_path_);
    if (!import.ok()) return import;
    Status view = db.Execute(
        "CREATE VIEW EO AS SELECT *, SUM(revenue) AS MEASURE r FROM Orders");
    if (!view.ok()) return view;
    auto r = db.Query(sql);
    if (!r.ok()) return r.status();
    *stats = r.value().stats();
    *out = std::move(r.value());
    return Status::Ok();
  };

  auto& fi = FaultInjector::Instance();
  fi.ArmAt(0);  // count-only
  {
    ResultSet rs;
    std::shared_ptr<const QueryStats> stats;
    ASSERT_TRUE(run(&rs, &stats).ok());
    ASSERT_NE(stats, nullptr);
    EXPECT_GE(stats->measure_grouped_builds, 1u);
  }
  const int64_t n = fi.hits();
  fi.Reset();
  ASSERT_GT(n, 0);

  bool exercised = false;
  for (int64_t i = 1; i <= n; ++i) {
    fi.ArmAt(i);
    ResultSet rs;
    std::shared_ptr<const QueryStats> stats;
    Status st = run(&rs, &stats);
    const std::string fired_site = fi.fired_site();
    fi.Reset();
    if (fired_site != "measure.grouped_index_build") continue;
    exercised = true;
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_NE(stats, nullptr);
    EXPECT_GE(stats->measure_grouped_fallbacks, 1u);
    EXPECT_EQ(stats->measure_grouped_builds, 0u);
    EXPECT_GT(stats->measure_source_scans, 0u);
    // Degraded results are still the listing's correct totals.
    ASSERT_EQ(rs.num_rows(), 3u);
    EXPECT_EQ(rs.Get(0, "v").int_val(), 5);    // Acme
    EXPECT_EQ(rs.Get(1, "v").int_val(), 17);   // Happy: 6 + 7 + 4
    EXPECT_EQ(rs.Get(2, "v").int_val(), 3);    // Whizz
  }
  EXPECT_TRUE(exercised)
      << "the workload never crossed measure.grouped_index_build";
}

TEST_F(FaultInjectionTest, VectorizedKernelFaultDegradesToRowExecution) {
  // A fault at exec.vectorized_kernel must never fail the query: the
  // operator drops to row-at-a-time execution, bumps
  // msql_exec_row_fallbacks_total, and produces identical results.
  const char* sql =
      "SELECT prodName, r AS v FROM EO GROUP BY prodName ORDER BY prodName";
  auto run = [&](ResultSet* out, std::shared_ptr<const QueryStats>* stats) {
    Engine db;
    Status import = db.ImportCsv("Orders", csv_path_);
    if (!import.ok()) return import;
    Status view = db.Execute(
        "CREATE VIEW EO AS SELECT *, SUM(revenue) AS MEASURE r FROM Orders");
    if (!view.ok()) return view;
    auto r = db.Query(sql);
    if (!r.ok()) return r.status();
    *stats = r.value().stats();
    *out = std::move(r.value());
    return Status::Ok();
  };

  auto& fi = FaultInjector::Instance();
  fi.ArmAt(0);  // count-only
  {
    ResultSet rs;
    std::shared_ptr<const QueryStats> stats;
    ASSERT_TRUE(run(&rs, &stats).ok());
  }
  const int64_t n = fi.hits();
  fi.Reset();
  ASSERT_GT(n, 0);

  bool exercised = false;
  for (int64_t i = 1; i <= n; ++i) {
    fi.ArmAt(i);
    ResultSet rs;
    std::shared_ptr<const QueryStats> stats;
    Status st = run(&rs, &stats);
    const std::string fired_site = fi.fired_site();
    fi.Reset();
    if (fired_site != "exec.vectorized_kernel") continue;
    exercised = true;
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_NE(stats, nullptr);
    EXPECT_GE(stats->exec_row_fallbacks, 1u);
    // Degraded results are still the listing's correct totals.
    ASSERT_EQ(rs.num_rows(), 3u);
    EXPECT_EQ(rs.Get(0, "v").int_val(), 5);    // Acme
    EXPECT_EQ(rs.Get(1, "v").int_val(), 17);   // Happy: 6 + 7 + 4
    EXPECT_EQ(rs.Get(2, "v").int_val(), 3);    // Whizz
  }
  EXPECT_TRUE(exercised)
      << "the workload never crossed exec.vectorized_kernel";
}

TEST_F(FaultInjectionTest, AdmissionAndRetrySweep) {
  // The runtime fault points (runtime.admission_wait at the head of
  // Submit, runtime.retry_backoff before each retry sleep) are crossed
  // deterministically through the scheduler, and each fires cleanly.
  auto& fi = FaultInjector::Instance();
  Engine db;
  ASSERT_TRUE(db.ImportCsv("Orders", csv_path_).ok());

  SchedulerOptions opts;
  opts.num_threads = 1;
  opts.max_pending = 0;            // every submission is shed...
  opts.max_admission_wait_ms = 0;  // ...immediately (instant reject)
  QueryScheduler scheduler(opts);
  SessionPtr session = db.CreateSession();
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 1;

  // Count-only pass: 3 attempts cross runtime.admission_wait, the 2
  // retries cross runtime.retry_backoff; nothing executes.
  fi.ArmAt(0);
  {
    Result<ResultSet> r =
        scheduler.SubmitWithRetry(session, "SELECT COUNT(*) FROM Orders",
                                  policy);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::kResourceExhausted);
  }
  EXPECT_EQ(fi.hits(), 5);
  fi.Reset();

  // Fire at admission: the submission fails with the injected fault before
  // any waiting, and the rejection is not retried (kExecution is not
  // retryable).
  fi.ArmSite("runtime.admission_wait", 1);
  {
    auto f = scheduler.Submit(session, "SELECT COUNT(*) FROM Orders");
    ASSERT_FALSE(f.ok());
    EXPECT_NE(f.status().message().find("injected fault"), std::string::npos)
        << f.status().ToString();
    EXPECT_EQ(fi.fired_site(), "runtime.admission_wait");
    EXPECT_EQ(fi.fire_count(), 1);
  }
  fi.Reset();

  // Fire at the retry backoff: the first shed is retryable, the backoff
  // checkpoint fires, and the retry loop unwinds with the injected fault.
  fi.ArmSite("runtime.retry_backoff", 1);
  {
    Result<ResultSet> r =
        scheduler.SubmitWithRetry(session, "SELECT COUNT(*) FROM Orders",
                                  policy);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("injected fault"), std::string::npos)
        << r.status().ToString();
    EXPECT_EQ(fi.fired_site(), "runtime.retry_backoff");
    EXPECT_EQ(fi.fire_count(), 1);
  }
  fi.Reset();

  // Disarmed again, the same scheduler still sheds cleanly and a fresh
  // permissive scheduler executes the probe.
  EXPECT_FALSE(scheduler.Submit(session, "SELECT 1").ok());
  QueryScheduler ok_sched;
  auto f = ok_sched.Submit(session, "SELECT COUNT(*) FROM Orders");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  auto probe = f.take().get();
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_EQ(probe.value().Get(0, 0).int_val(), 5);
}

TEST_F(FaultInjectionTest, NetFaultPointsFailCleanly) {
  // Each net.* fault point, injected in turn, must terminate the affected
  // connection with a documented status (clean Error frame or clean close
  // — never a hang or a half-written frame), and the server must keep
  // serving healthy clients afterwards.
  auto& fi = FaultInjector::Instance();
  EngineOptions engine_options;
  engine_options.enable_plan_cache = true;
  Engine db(engine_options);
  ASSERT_TRUE(db.Execute("CREATE TABLE T (x INTEGER); "
                         "INSERT INTO T VALUES (1), (2), (3)")
                  .ok());
  net::ServerOptions server_options;
  server_options.admin_port = 0;  // cover the admin plane in the sweep too
  net::MsqldServer server(&db, server_options);
  ASSERT_TRUE(server.Start().ok());

  auto probe_healthy = [&](const char* who) {
    net::Client client;
    net::ClientOptions options;
    options.user = who;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), options).ok())
        << "server unhealthy after fault (" << who << ")";
    auto r = client.Query("SELECT COUNT(*) FROM T");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().Get(0, 0).int_val(), 3);
  };

  // net.accept: the connection is refused with a clean close before the
  // handshake; the acceptor keeps running.
  {
    fi.ArmSite("net.accept", 1);
    net::Client victim;
    net::ClientOptions options;
    options.user = "victim";
    options.io_timeout_ms = 5000;
    Status st = victim.Connect("127.0.0.1", server.port(), options);
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(fi.fired_site(), "net.accept");
    fi.Reset();
    probe_healthy("after-accept");
  }

  // net.read_frame: the parsed frame is answered with an Error frame
  // carrying the injected fault, then the connection closes cleanly.
  {
    net::Client victim;
    net::ClientOptions options;
    options.user = "victim";
    options.io_timeout_ms = 5000;
    ASSERT_TRUE(victim.Connect("127.0.0.1", server.port(), options).ok());
    fi.ArmSite("net.read_frame", 1);
    auto r = victim.Query("SELECT 1");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("injected fault"), std::string::npos)
        << r.status().ToString();
    EXPECT_EQ(fi.fired_site(), "net.read_frame");
    fi.Reset();
    probe_healthy("after-read");
  }

  // net.write_frame: the flush aborts before any bytes go out — the
  // client observes a clean close (kIo), never a torn frame.
  {
    net::Client victim;
    net::ClientOptions options;
    options.user = "victim";
    options.io_timeout_ms = 5000;
    ASSERT_TRUE(victim.Connect("127.0.0.1", server.port(), options).ok());
    fi.ArmSite("net.write_frame", 1);
    auto r = victim.Query("SELECT 1");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::kIo) << r.status().ToString();
    fi.Reset();
    probe_healthy("after-write");
  }

  // net.plan_cache_fill: the cache fill fails inside Prepare; the client
  // receives the injected fault as a typed Error and the connection
  // remains usable.
  {
    net::Client victim;
    net::ClientOptions options;
    options.user = "victim";
    options.io_timeout_ms = 5000;
    ASSERT_TRUE(victim.Connect("127.0.0.1", server.port(), options).ok());
    fi.ArmSite("net.plan_cache_fill", 1);
    auto stmt = victim.Prepare("SELECT x FROM T WHERE x > ?",
                               {TypeKind::kInt64});
    ASSERT_FALSE(stmt.ok());
    EXPECT_NE(stmt.status().message().find("injected fault"),
              std::string::npos)
        << stmt.status().ToString();
    EXPECT_EQ(fi.fired_site(), "net.plan_cache_fill");
    fi.Reset();
    // Same connection retries successfully once the fault clears.
    auto retry = victim.Prepare("SELECT x FROM T WHERE x > ?",
                                {TypeKind::kInt64});
    EXPECT_TRUE(retry.ok()) << retry.status().ToString();
    probe_healthy("after-fill");
  }

  // net.admin_http: admin-plane failures degrade to a dropped scrape plus
  // the error counter — they never touch the query path. The point is
  // checked twice per request (accept, then response write), so hit 1
  // exercises the accept path and hit 2 the write path.
  {
    auto http_get = [&](const std::string& path) {
      std::string response;
      auto sock = net::ConnectTo("127.0.0.1", server.admin_port(), 2000);
      if (!sock.ok()) return response;
      const std::string request =
          "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
      if (!net::WriteAll(sock.value().fd(), request.data(), request.size(),
                         2000)
               .ok()) {
        return response;
      }
      char buf[2048];
      while (true) {
        pollfd pfd{sock.value().fd(), POLLIN, 0};
        if (poll(&pfd, 1, 2000) <= 0) break;
        const ssize_t got = ::recv(sock.value().fd(), buf, sizeof(buf), 0);
        if (got <= 0) break;
        response.append(buf, static_cast<size_t>(got));
      }
      return response;
    };

    fi.ArmSite("net.admin_http", 1);  // accept path
    EXPECT_TRUE(http_get("/metrics").empty());
    EXPECT_EQ(fi.fired_site(), "net.admin_http");
    fi.Reset();
    probe_healthy("during-admin-fault");

    fi.ArmSite("net.admin_http", 2);  // write path
    EXPECT_TRUE(http_get("/healthz").empty());
    EXPECT_EQ(fi.fired_site(), "net.admin_http");
    fi.Reset();
    probe_healthy("after-admin-fault");

    // Both failures were counted; a clean scrape works again.
    const std::string scrape = http_get("/metrics");
    EXPECT_NE(scrape.find("msql_net_admin_errors_total 2"),
              std::string::npos)
        << scrape.substr(0, 400);
  }

  server.Stop();
}

TEST_F(FaultInjectionTest, EngineSurvivesMidWorkloadFault) {
  // Same engine, not a fresh one: a fault in one statement must not poison
  // later statements on the same engine instance.
  auto& fi = FaultInjector::Instance();
  Engine db;
  ASSERT_TRUE(db.ImportCsv("Orders", csv_path_).ok());
  ASSERT_TRUE(
      db.Execute(
            "CREATE VIEW EO AS SELECT *, SUM(revenue) AS MEASURE r FROM Orders")
          .ok());

  fi.ArmAt(1);  // next checkpoint fires
  auto failed = db.Query("SELECT prodName, AGGREGATE(r) FROM EO "
                         "GROUP BY prodName");
  EXPECT_FALSE(failed.ok());
  EXPECT_NE(failed.status().message().find("injected fault"),
            std::string::npos)
      << failed.status().ToString();
  fi.Reset();

  auto ok = db.Query("SELECT prodName, AGGREGATE(r) AS v FROM EO "
                     "GROUP BY prodName ORDER BY prodName");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  ASSERT_EQ(ok.value().num_rows(), 3u);
  EXPECT_EQ(ok.value().Get(0, "v").int_val(), 5);    // Acme
  EXPECT_EQ(ok.value().Get(1, "v").int_val(), 17);   // Happy: 6 + 7 + 4
  EXPECT_EQ(ok.value().Get(2, "v").int_val(), 3);    // Whizz
}

}  // namespace
}  // namespace msql

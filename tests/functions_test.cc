// Direct unit tests for the function registry: lookup, type inference,
// scalar evaluation (incl. NULL propagation exceptions) and the aggregate
// accumulator.

#include "binder/functions.h"

#include <cmath>

#include "gtest/gtest.h"

namespace msql {
namespace {

Value Eval(FunctionId id, std::vector<Value> args) {
  auto r = EvalScalarFunction(id, args);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r.take() : Value::Null();
}

TEST(FunctionRegistryTest, LookupIsCaseInsensitive) {
  EXPECT_EQ(LookupScalarFunction("year"), FunctionId::kYear);
  EXPECT_EQ(LookupScalarFunction("YeAr"), FunctionId::kYear);
  EXPECT_EQ(LookupScalarFunction("nosuch"), FunctionId::kInvalid);
  EXPECT_EQ(LookupAggFunction("sum"), AggId::kSum);
  EXPECT_EQ(LookupAggFunction("ARG_MAX"), AggId::kMaxBy);
  EXPECT_EQ(LookupAggFunction("nope"), AggId::kInvalid);
}

TEST(FunctionRegistryTest, WindowOnly) {
  EXPECT_TRUE(IsWindowOnly(AggId::kRowNumber));
  EXPECT_TRUE(IsWindowOnly(AggId::kRank));
  EXPECT_FALSE(IsWindowOnly(AggId::kSum));
}

TEST(TypeInferenceTest, Arithmetic) {
  auto t = ScalarResultType(FunctionId::kOpAdd, "+",
                            {DataType::Int64(), DataType::Int64()});
  EXPECT_EQ(t.value().kind, TypeKind::kInt64);
  t = ScalarResultType(FunctionId::kOpAdd, "+",
                       {DataType::Int64(), DataType::Double()});
  EXPECT_EQ(t.value().kind, TypeKind::kDouble);
  // Division is always exact.
  t = ScalarResultType(FunctionId::kOpDiv, "/",
                       {DataType::Int64(), DataType::Int64()});
  EXPECT_EQ(t.value().kind, TypeKind::kDouble);
  // Date arithmetic.
  t = ScalarResultType(FunctionId::kOpSub, "-",
                       {DataType::Date(), DataType::Date()});
  EXPECT_EQ(t.value().kind, TypeKind::kInt64);
  t = ScalarResultType(FunctionId::kOpAdd, "+",
                       {DataType::Date(), DataType::Int64()});
  EXPECT_EQ(t.value().kind, TypeKind::kDate);
  // String + int is rejected.
  EXPECT_FALSE(ScalarResultType(FunctionId::kOpAdd, "+",
                                {DataType::String(), DataType::Int64()})
                   .ok());
}

TEST(TypeInferenceTest, ArityChecks) {
  EXPECT_FALSE(ScalarResultType(FunctionId::kYear, "YEAR", {}).ok());
  EXPECT_FALSE(ScalarResultType(FunctionId::kYear, "YEAR",
                                {DataType::Date(), DataType::Date()})
                   .ok());
  EXPECT_FALSE(
      ScalarResultType(FunctionId::kYear, "YEAR", {DataType::Int64()}).ok());
  EXPECT_FALSE(AggResultType(AggId::kSum, "SUM", {}).ok());
  EXPECT_FALSE(AggResultType(AggId::kSum, "SUM", {DataType::String()}).ok());
  EXPECT_FALSE(AggResultType(AggId::kMaxBy, "MAX_BY", {DataType::Int64()})
                   .ok());
}

TEST(ScalarEvalTest, NullPropagation) {
  EXPECT_TRUE(
      Eval(FunctionId::kOpAdd, {Value::Null(), Value::Int(1)}).is_null());
  EXPECT_TRUE(Eval(FunctionId::kUpper, {Value::Null()}).is_null());
  // The NULL-aware functions do not blanket-propagate.
  EXPECT_EQ(Eval(FunctionId::kCoalesce, {Value::Null(), Value::Int(2)})
                .int_val(),
            2);
  EXPECT_FALSE(
      Eval(FunctionId::kOpAnd, {Value::Null(), Value::Bool(false)}).is_null());
  EXPECT_TRUE(Eval(FunctionId::kOpIsNotDistinctFrom,
                   {Value::Null(), Value::Null()})
                  .bool_val());
}

TEST(ScalarEvalTest, IntegerOverflowFreeBasics) {
  EXPECT_EQ(Eval(FunctionId::kOpMul, {Value::Int(6), Value::Int(7)}).int_val(),
            42);
  EXPECT_EQ(Eval(FunctionId::kOpNeg, {Value::Int(5)}).int_val(), -5);
  EXPECT_DOUBLE_EQ(
      Eval(FunctionId::kOpDiv, {Value::Int(1), Value::Int(4)}).double_val(),
      0.25);
}

TEST(ScalarEvalTest, ErrorsAreStatuses) {
  EXPECT_FALSE(
      EvalScalarFunction(FunctionId::kOpDiv, {Value::Int(1), Value::Int(0)})
          .ok());
  EXPECT_FALSE(
      EvalScalarFunction(FunctionId::kMod, {Value::Int(1), Value::Int(0)})
          .ok());
  EXPECT_FALSE(
      EvalScalarFunction(FunctionId::kSqrt, {Value::Double(-1)}).ok());
  EXPECT_FALSE(EvalScalarFunction(FunctionId::kLn, {Value::Double(0)}).ok());
}

TEST(ScalarEvalTest, StringFunctions) {
  EXPECT_EQ(Eval(FunctionId::kSubstr,
                 {Value::String("hello"), Value::Int(2), Value::Int(2)})
                .str(),
            "el");
  EXPECT_EQ(Eval(FunctionId::kSubstr, {Value::String("hi"), Value::Int(9)})
                .str(),
            "");
  EXPECT_EQ(
      Eval(FunctionId::kReplaceFn,
           {Value::String("aaa"), Value::String("a"), Value::String("ab")})
          .str(),
      "ababab");
}

TEST(AggAccumulatorTest, SumKeepsIntegerType) {
  AggAccumulator acc(AggId::kSum);
  ASSERT_TRUE(acc.Accumulate({Value::Int(2)}).ok());
  ASSERT_TRUE(acc.Accumulate({Value::Int(3)}).ok());
  Value v = acc.Finish();
  EXPECT_EQ(v.kind(), TypeKind::kInt64);
  EXPECT_EQ(v.int_val(), 5);
}

TEST(AggAccumulatorTest, SumPromotesOnDouble) {
  AggAccumulator acc(AggId::kSum);
  ASSERT_TRUE(acc.Accumulate({Value::Int(2)}).ok());
  ASSERT_TRUE(acc.Accumulate({Value::Double(0.5)}).ok());
  Value v = acc.Finish();
  EXPECT_EQ(v.kind(), TypeKind::kDouble);
  EXPECT_DOUBLE_EQ(v.double_val(), 2.5);
}

TEST(AggAccumulatorTest, EmptyAggregates) {
  EXPECT_TRUE(AggAccumulator(AggId::kSum).Finish().is_null());
  EXPECT_TRUE(AggAccumulator(AggId::kAvg).Finish().is_null());
  EXPECT_TRUE(AggAccumulator(AggId::kMin).Finish().is_null());
  EXPECT_EQ(AggAccumulator(AggId::kCountStar).Finish().int_val(), 0);
}

TEST(AggAccumulatorTest, NullsAreSkipped) {
  AggAccumulator sum(AggId::kSum);
  ASSERT_TRUE(sum.Accumulate({Value::Null()}).ok());
  ASSERT_TRUE(sum.Accumulate({Value::Int(7)}).ok());
  EXPECT_EQ(sum.Finish().int_val(), 7);

  AggAccumulator count(AggId::kCount);
  ASSERT_TRUE(count.Accumulate({Value::Null()}).ok());
  ASSERT_TRUE(count.Accumulate({Value::Int(1)}).ok());
  EXPECT_EQ(count.Finish().int_val(), 1);
}

TEST(AggAccumulatorTest, MinMaxOnStringsAndDates) {
  AggAccumulator mn(AggId::kMin);
  ASSERT_TRUE(mn.Accumulate({Value::String("pear")}).ok());
  ASSERT_TRUE(mn.Accumulate({Value::String("apple")}).ok());
  EXPECT_EQ(mn.Finish().str(), "apple");

  AggAccumulator mx(AggId::kMax);
  ASSERT_TRUE(mx.Accumulate({Value::Date(10)}).ok());
  ASSERT_TRUE(mx.Accumulate({Value::Date(20)}).ok());
  EXPECT_EQ(mx.Finish().date_days(), 20);
}

TEST(AggAccumulatorTest, MinByMaxBy) {
  AggAccumulator by(AggId::kMaxBy);
  ASSERT_TRUE(by.Accumulate({Value::String("old"), Value::Date(1)}).ok());
  ASSERT_TRUE(by.Accumulate({Value::String("new"), Value::Date(9)}).ok());
  ASSERT_TRUE(by.Accumulate({Value::String("skip"), Value::Null()}).ok());
  EXPECT_EQ(by.Finish().str(), "new");

  AggAccumulator worst(AggId::kMinBy);
  ASSERT_TRUE(worst.Accumulate({Value::String("a"), Value::Int(3)}).ok());
  ASSERT_TRUE(worst.Accumulate({Value::String("b"), Value::Int(1)}).ok());
  EXPECT_EQ(worst.Finish().str(), "b");
}

TEST(AggAccumulatorTest, StddevVarianceSmallCounts) {
  AggAccumulator sd(AggId::kStddev);
  ASSERT_TRUE(sd.Accumulate({Value::Double(5)}).ok());
  EXPECT_TRUE(sd.Finish().is_null());  // fewer than 2 samples
  ASSERT_TRUE(sd.Accumulate({Value::Double(7)}).ok());
  EXPECT_NEAR(sd.Finish().double_val(), std::sqrt(2.0), 1e-9);
}

TEST(AggAccumulatorTest, WindowOnlyRejectsAccumulation) {
  AggAccumulator rn(AggId::kRowNumber);
  EXPECT_FALSE(rn.Accumulate({}).ok());
}

}  // namespace
}  // namespace msql

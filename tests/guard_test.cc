// Resource governor coverage: wall-clock timeout, memory / result-row
// budgets, cooperative cancellation (per-query token and engine-wide
// CancelAll), and the invariant that a guarded abort leaves the engine in
// a clean, reusable state.

#include <atomic>
#include <chrono>
#include <thread>

#include "common/query_guard.h"
#include "engine/engine.h"
#include "gtest/gtest.h"
#include "tests/paper_fixture.h"

namespace msql {
namespace {

// Loads `n` rows of (k INTEGER, v INTEGER) into table T.
void LoadInts(Engine* db, int n, int distinct_keys) {
  ASSERT_TRUE(db->Execute("CREATE TABLE T (k INTEGER, v INTEGER)").ok());
  std::vector<Row> rows;
  rows.reserve(n);
  for (int i = 0; i < n; ++i) {
    rows.push_back({Value::Int(i % distinct_keys), Value::Int(i)});
  }
  ASSERT_TRUE(db->InsertRows("T", std::move(rows)).ok());
}

TEST(GuardTest, TimeoutTripsOnCrossJoin) {
  Engine db;
  db.options().timeout_ms = 20;
  LoadInts(&db, 2000, 2000);
  // 2000 x 2000 x 2000 = 8e9 combined rows: never finishes in 20ms; the
  // deadline poll must unwind it with kDeadlineExceeded.
  auto r = db.Query(
      "SELECT COUNT(*) FROM T a, T b, T c WHERE a.v + b.v + c.v < 0");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kDeadlineExceeded);
  EXPECT_NE(r.status().message().find("deadline"), std::string::npos)
      << r.status().ToString();
}

TEST(GuardTest, RowBudgetTripsOnLargeGroupBy) {
  Engine db;
  LoadInts(&db, 1000, 1000);  // every row its own group
  db.options().max_result_rows = 1500;
  // Scan charges 1000 rows; the per-group emission pushes the cumulative
  // count over 1500 deterministically.
  auto r = db.Query("SELECT k, SUM(v) FROM T GROUP BY k");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("max_result_rows"), std::string::npos)
      << r.status().ToString();
}

TEST(GuardTest, MemoryBudgetTrips) {
  Engine db;
  LoadInts(&db, 10000, 100);
  db.options().max_memory_bytes = 64 * 1024;  // far below the scan estimate
  auto r = db.Query("SELECT k, SUM(v) FROM T GROUP BY k");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("max_memory_bytes"), std::string::npos)
      << r.status().ToString();
}

TEST(GuardTest, BudgetErrorIsDeterministic) {
  // Same query, same budget -> byte-identical error, run after run.
  std::string first;
  for (int i = 0; i < 3; ++i) {
    Engine db;
    LoadInts(&db, 500, 500);
    db.options().max_result_rows = 600;
    auto r = db.Query("SELECT k FROM T ORDER BY k");
    ASSERT_FALSE(r.ok());
    if (i == 0) {
      first = r.status().ToString();
    } else {
      EXPECT_EQ(r.status().ToString(), first);
    }
  }
}

TEST(GuardTest, CancelTokenFromSecondThread) {
  Engine db;
  LoadInts(&db, 2000, 2000);
  CancelTokenPtr token = Engine::NewCancelToken();
  std::thread canceller([token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    token->Cancel();
  });
  auto r = db.Query(
      "SELECT COUNT(*) FROM T a, T b, T c WHERE a.v + b.v + c.v < 0", token);
  canceller.join();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kCancelled);
  EXPECT_NE(r.status().message().find("cancel"), std::string::npos)
      << r.status().ToString();
}

TEST(GuardTest, CancelAllFromSecondThread) {
  Engine db;
  LoadInts(&db, 2000, 2000);
  std::thread canceller([&db] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    db.CancelAll();
  });
  auto r = db.Query(
      "SELECT COUNT(*) FROM T a, T b, T c WHERE a.v + b.v + c.v < 0");
  canceller.join();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kCancelled);
  // CancelAll only affects statements running at the time of the call.
  auto again = db.Query("SELECT COUNT(*) FROM T");
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again.value().Get(0, 0).int_val(), 2000);
}

TEST(GuardTest, PreCancelledTokenTripsImmediately) {
  Engine db;
  LoadPaperData(&db);
  CancelTokenPtr token = Engine::NewCancelToken();
  token->Cancel();
  auto r = db.Query("SELECT COUNT(*) FROM Orders", token);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kCancelled);
}

TEST(GuardTest, EngineUsableAfterGuardedAbort) {
  Engine db;
  LoadPaperData(&db);
  MustExecute(&db,
              "CREATE VIEW EO AS SELECT *, SUM(revenue) AS MEASURE r "
              "FROM Orders");
  db.options().max_result_rows = 3;
  db.options().enable_tracing = true;  // failed queries report via the trace
  auto r = db.Query("SELECT prodName, AGGREGATE(r) FROM EO GROUP BY prodName");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kResourceExhausted);
  // Counters must be consistent: the abort unwound every Execute frame.
  auto traces = db.RecentTraces();
  ASSERT_FALSE(traces.empty());
  EXPECT_EQ(traces[0]->stats().depth, 0);
  db.options().enable_tracing = false;
  // Lifting the budget, the same engine answers the same query correctly.
  db.options().max_result_rows = 0;
  ResultSet rs = MustQuery(
      &db, "SELECT prodName, AGGREGATE(r) AS v FROM EO "
           "GROUP BY prodName ORDER BY prodName");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.Get(0, "v").int_val(), 5);
  EXPECT_EQ(rs.Get(1, "v").int_val(), 17);
  EXPECT_EQ(rs.Get(2, "v").int_val(), 3);
}

TEST(GuardTest, GenerousLimitsDoNotChangeResults) {
  Engine plain, guarded;
  guarded.options().timeout_ms = 60 * 1000;
  guarded.options().max_memory_bytes = uint64_t{8} << 30;
  guarded.options().max_result_rows = 100 * 1000 * 1000;
  for (Engine* db : {&plain, &guarded}) {
    LoadPaperData(db);
    MustExecute(db,
                "CREATE VIEW EO AS SELECT *, SUM(revenue) AS MEASURE r "
                "FROM Orders");
  }
  const char* queries[] = {
      "SELECT prodName, AGGREGATE(r) AS v FROM EO GROUP BY prodName "
      "ORDER BY prodName",
      "SELECT custName, r AT (ALL) AS total FROM EO GROUP BY custName "
      "ORDER BY custName",
      "SELECT COUNT(DISTINCT prodName) FROM Orders",
  };
  for (const char* q : queries) {
    ResultSet a = MustQuery(&plain, q);
    ResultSet b = MustQuery(&guarded, q);
    ASSERT_EQ(a.num_rows(), b.num_rows()) << q;
    for (size_t i = 0; i < a.num_rows(); ++i) {
      for (size_t c = 0; c < a.num_columns(); ++c) {
        EXPECT_TRUE(Value::NotDistinct(a.Get(i, c), b.Get(i, c))) << q;
      }
    }
  }
}

TEST(GuardTest, ChargeAccountingIsVisible) {
  Engine db;
  LoadInts(&db, 100, 10);
  auto r = db.Query("SELECT k, SUM(v) FROM T GROUP BY k");
  ASSERT_TRUE(r.ok());
  ASSERT_NE(r.value().stats(), nullptr);
  // The scan alone accounts for >= 100 rows; grouping adds 10 more.
  EXPECT_GE(r.value().stats()->rows_charged, 110u);
  EXPECT_GT(r.value().stats()->bytes_charged, 0u);
}

}  // namespace
}  // namespace msql

// Unit tests for the SQL lexer.

#include "parser/lexer.h"

#include "gtest/gtest.h"

namespace msql {
namespace {

std::vector<Token> Lex(const std::string& sql) {
  Lexer lexer(sql);
  auto r = lexer.Tokenize();
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r.take() : std::vector<Token>{};
}

TEST(LexerTest, KeywordsAndIdentifiers) {
  auto tokens = Lex("SELECT prodName FROM Orders");
  ASSERT_EQ(tokens.size(), 5u);  // incl EOF
  EXPECT_EQ(tokens[0].type, TokenType::kSelect);
  EXPECT_EQ(tokens[1].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[1].text, "prodName");
  EXPECT_EQ(tokens[2].type, TokenType::kFrom);
  EXPECT_EQ(tokens[4].type, TokenType::kEof);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Lex("select SeLeCt SELECT");
  EXPECT_EQ(tokens[0].type, TokenType::kSelect);
  EXPECT_EQ(tokens[1].type, TokenType::kSelect);
  EXPECT_EQ(tokens[2].type, TokenType::kSelect);
}

TEST(LexerTest, MeasureKeywords) {
  auto tokens = Lex("AT ALL SET VISIBLE CURRENT MEASURE");
  EXPECT_EQ(tokens[0].type, TokenType::kAt);
  EXPECT_EQ(tokens[1].type, TokenType::kAll);
  EXPECT_EQ(tokens[2].type, TokenType::kSet);
  EXPECT_EQ(tokens[3].type, TokenType::kVisible);
  EXPECT_EQ(tokens[4].type, TokenType::kCurrent);
  EXPECT_EQ(tokens[5].type, TokenType::kMeasure);
}

TEST(LexerTest, Numbers) {
  auto tokens = Lex("1 42 3.5 0.25 1e3 2.5E-2 7e x");
  EXPECT_EQ(tokens[0].type, TokenType::kIntegerLiteral);
  EXPECT_EQ(tokens[0].int_value, 1);
  EXPECT_EQ(tokens[1].int_value, 42);
  EXPECT_EQ(tokens[2].type, TokenType::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(tokens[2].double_value, 3.5);
  EXPECT_DOUBLE_EQ(tokens[3].double_value, 0.25);
  EXPECT_DOUBLE_EQ(tokens[4].double_value, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[5].double_value, 0.025);
  // "7e" is the integer 7 followed by identifier e (not an exponent).
  EXPECT_EQ(tokens[6].type, TokenType::kIntegerLiteral);
  EXPECT_EQ(tokens[7].type, TokenType::kIdentifier);
}

TEST(LexerTest, Strings) {
  auto tokens = Lex("'hello' 'it''s' ''");
  EXPECT_EQ(tokens[0].type, TokenType::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "it's");
  EXPECT_EQ(tokens[2].text, "");
}

TEST(LexerTest, QuotedIdentifiers) {
  auto tokens = Lex("\"select\" `weird name`");
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "select");
  EXPECT_EQ(tokens[1].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[1].text, "weird name");
}

TEST(LexerTest, Operators) {
  auto tokens = Lex("= <> != < <= > >= + - * / % || ( ) , . ;");
  TokenType expected[] = {
      TokenType::kEq,    TokenType::kNe,      TokenType::kNe,
      TokenType::kLt,    TokenType::kLe,      TokenType::kGt,
      TokenType::kGe,    TokenType::kPlus,    TokenType::kMinus,
      TokenType::kStar,  TokenType::kSlash,   TokenType::kPercent,
      TokenType::kConcatOp, TokenType::kLParen, TokenType::kRParen,
      TokenType::kComma, TokenType::kDot,     TokenType::kSemicolon,
  };
  for (size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(tokens[i].type, expected[i]) << "token " << i;
  }
}

TEST(LexerTest, Comments) {
  auto tokens = Lex("SELECT -- a line comment\n 1 /* block\ncomment */ + 2");
  EXPECT_EQ(tokens[0].type, TokenType::kSelect);
  EXPECT_EQ(tokens[1].type, TokenType::kIntegerLiteral);
  EXPECT_EQ(tokens[2].type, TokenType::kPlus);
  EXPECT_EQ(tokens[3].type, TokenType::kIntegerLiteral);
}

TEST(LexerTest, LineAndColumnTracking) {
  auto tokens = Lex("SELECT\n  foo");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(LexerTest, Errors) {
  for (const char* bad : {"'unterminated", "\"unterminated", "a ! b", "@"}) {
    Lexer lexer(bad);
    EXPECT_FALSE(lexer.Tokenize().ok()) << bad;
  }
}

TEST(LexerTest, EmptyInput) {
  auto tokens = Lex("   \n\t ");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEof);
}

}  // namespace
}  // namespace msql

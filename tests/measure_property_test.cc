// Property-based tests: invariants of measure semantics checked over
// randomized datasets (parameterized by seed). Each property is the kind of
// algebraic identity the paper's semantics imply.

#include <random>

#include "common/string_util.h"
#include "engine/engine.h"
#include "gtest/gtest.h"
#include "tests/paper_fixture.h"
#include "tests/testing_matchers.h"

namespace msql {
namespace {

// Builds a random Orders-like table with `n` rows.
void LoadRandomOrders(Engine* db, uint32_t seed, int n) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> prod(0, 5);
  std::uniform_int_distribution<int> cust(0, 3);
  std::uniform_int_distribution<int> year(2020, 2024);
  std::uniform_int_distribution<int> month(1, 12);
  std::uniform_int_distribution<int> day(1, 28);
  std::uniform_int_distribution<int> revenue(1, 100);

  MustExecute(db, R"sql(
    CREATE TABLE Orders (prodName VARCHAR, custName VARCHAR,
                         orderDate DATE, revenue INTEGER, cost INTEGER)
  )sql");
  std::string insert = "INSERT INTO Orders VALUES ";
  for (int i = 0; i < n; ++i) {
    int rev = revenue(rng);
    int cost = std::max(1, rev - 1 - (rev > 1 ? revenue(rng) % rev : 0));
    if (i > 0) insert += ", ";
    insert += StrCat("('P", prod(rng), "', 'C", cust(rng), "', DATE '",
                     year(rng), "-", month(rng) < 10 ? "0" : "", month(rng),
                     "-", day(rng) < 10 ? "0" : "", day(rng), "', ", rev, ", ",
                     cost, ")");
  }
  MustExecute(db, insert);
  MustExecute(db, R"sql(
    CREATE VIEW EO AS SELECT *, SUM(revenue) AS MEASURE r,
                             COUNT(*) AS MEASURE n,
                             YEAR(orderDate) AS orderYear
    FROM Orders
  )sql");
}

class MeasurePropertyTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  void SetUp() override { LoadRandomOrders(&db_, GetParam(), 80); }
  Engine db_;
};

// Property 1: AGGREGATE(m) over a measure equals the plain aggregate.
TEST_P(MeasurePropertyTest, AggregateEqualsPlainSum) {
  ResultSet measured = MustQuery(&db_, R"sql(
    SELECT prodName, AGGREGATE(r) AS v FROM EO GROUP BY prodName
    ORDER BY prodName
  )sql");
  ResultSet plain = MustQuery(&db_, R"sql(
    SELECT prodName, SUM(revenue) AS v FROM Orders GROUP BY prodName
    ORDER BY prodName
  )sql");
  EXPECT_TRUE(testing::ResultsAgree(measured, plain));
}

// Property 2: shares computed via AT (ALL dim) sum to 1.
TEST_P(MeasurePropertyTest, SharesSumToOne) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, r * 1.0 / r AT (ALL prodName) AS share
    FROM EO GROUP BY prodName
  )sql");
  double total = 0;
  for (const Row& row : rs.rows()) total += row[1].double_val();
  EXPECT_NEAR(total, 1.0, 1e-9);
}

// Property 3: with no WHERE clause, bare measure == VISIBLE == AGGREGATE.
TEST_P(MeasurePropertyTest, NoFilterMakesAllCallSitesAgree) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, r AS bare, r AT (VISIBLE) AS viz, AGGREGATE(r) AS agg
    FROM EO GROUP BY prodName
  )sql");
  for (const Row& row : rs.rows()) {
    EXPECT_TRUE(testing::CellsAgree(row[1], row[2]));
    EXPECT_TRUE(testing::CellsAgree(row[1], row[3]));
  }
}

// Property 4: all three strategies agree (the localized-self-join cache
// and the grouped hash index are optimizations, never a semantic change).
TEST_P(MeasurePropertyTest, StrategiesAgree) {
  const char* query = R"sql(
    SELECT prodName, orderYear, AGGREGATE(r) AS v,
           r AT (SET orderYear = CURRENT orderYear - 1) AS prev,
           r AT (ALL) AS total
    FROM EO WHERE custName <> 'C0'
    GROUP BY prodName, orderYear
    ORDER BY prodName, orderYear
  )sql";
  // Grouped runs first: a later run would find every value already in the
  // shared measure cache and never need to probe its index.
  db_.options().measure_strategy = MeasureStrategy::kGrouped;
  ResultSet grouped = MustQuery(&db_, query);
  ASSERT_NE(grouped.stats(), nullptr);
  EXPECT_GT(grouped.stats()->measure_grouped_probes, 0u);
  db_.options().measure_strategy = MeasureStrategy::kMemoized;
  ResultSet memoized = MustQuery(&db_, query);
  ASSERT_NE(memoized.stats(), nullptr);
  EXPECT_GT(memoized.stats()->measure_cache_hits, 0u);
  db_.options().measure_strategy = MeasureStrategy::kNaive;
  ResultSet naive = MustQuery(&db_, query);
  ASSERT_NE(naive.stats(), nullptr);
  EXPECT_EQ(naive.stats()->measure_cache_hits, 0u);
  EXPECT_TRUE(testing::ResultsAgree(memoized, naive));
  EXPECT_TRUE(testing::ResultsAgree(memoized, grouped));
}

// Property 4c: the three strategies agree on every context kind the
// evaluator distinguishes — all-dimension contexts (grouped-index probes),
// WHERE-modifier predicate contexts (scan fallback), VISIBLE row-id
// contexts (inline fast path) — including NULL dimension values, which
// group by IS NOT DISTINCT FROM semantics (paper footnote 1).
TEST_P(MeasurePropertyTest, ThreeStrategiesAgreeOnEveryContextKind) {
  MustExecute(&db_, R"sql(
    INSERT INTO Orders VALUES (NULL, NULL, DATE '2022-06-15', 17, 5),
                              (NULL, 'C1', DATE '2023-01-02', 23, 9),
                              ('P1', NULL, DATE '2021-11-30', 31, 12)
  )sql");
  const char* queries[] = {
      // Bare measure + AT (ALL dim): all-dimension contexts.
      "SELECT prodName, custName, r AS bare, r AT (ALL custName) AS byProd "
      "FROM EO GROUP BY prodName, custName "
      "ORDER BY prodName NULLS LAST, custName NULLS LAST",
      // WHERE modifier: predicate contexts are not groupable.
      "SELECT prodName, r AT (WHERE revenue > 40) AS big FROM EO "
      "GROUP BY prodName ORDER BY prodName NULLS LAST",
      // VISIBLE under a filter: row-id contexts take the inline path.
      "SELECT custName, AGGREGATE(r) AS agg, r AT (VISIBLE) AS viz "
      "FROM EO WHERE revenue > 20 GROUP BY custName "
      "ORDER BY custName NULLS LAST",
      // Render path: the measure survives to the top level and is
      // evaluated per row with every dimension pinned.
      "SELECT prodName, custName, revenue, r FROM EO WHERE revenue > 60 "
      "ORDER BY prodName NULLS LAST, custName NULLS LAST, revenue",
  };
  for (const char* query : queries) {
    db_.options().measure_strategy = MeasureStrategy::kGrouped;
    ResultSet grouped = MustQuery(&db_, query);
    db_.options().measure_strategy = MeasureStrategy::kMemoized;
    ResultSet memoized = MustQuery(&db_, query);
    db_.options().measure_strategy = MeasureStrategy::kNaive;
    ResultSet naive = MustQuery(&db_, query);
    EXPECT_TRUE(testing::ResultsAgree(grouped, naive)) << query;
    EXPECT_TRUE(testing::ResultsAgree(grouped, memoized)) << query;
  }
}

// Property 4d: morsel-parallel grouped evaluation engages at scale and is
// deterministic — it agrees with a forced single-threaded grouped run and
// with the naive strategy, scheduling notwithstanding.
TEST_P(MeasurePropertyTest, ParallelGroupedAgreesAtScale) {
  const char* query = R"sql(
    SELECT prodName, custName, orderYear, r AS v, n AS c FROM EO
    GROUP BY prodName, custName, orderYear
    ORDER BY prodName, custName, orderYear
  )sql";
  Engine par;
  par.options().measure_strategy = MeasureStrategy::kGrouped;
  LoadRandomOrders(&par, GetParam() ^ 0x5eed, 2000);
  ResultSet parallel = MustQuery(&par, query);
  ASSERT_NE(parallel.stats(), nullptr);
  EXPECT_GT(parallel.stats()->measure_grouped_builds, 0u);
  EXPECT_GT(parallel.stats()->measure_grouped_probes, 0u);
  EXPECT_GT(parallel.stats()->measure_parallel_tasks, 0u);
  EXPECT_EQ(parallel.stats()->measure_grouped_fallbacks, 0u);

  Engine solo;
  solo.options().measure_strategy = MeasureStrategy::kGrouped;
  solo.options().measure_parallelism = 1;  // same strategy, no workers
  LoadRandomOrders(&solo, GetParam() ^ 0x5eed, 2000);
  ResultSet serial = MustQuery(&solo, query);
  ASSERT_NE(serial.stats(), nullptr);
  EXPECT_EQ(serial.stats()->measure_parallel_tasks, 0u);

  solo.options().measure_strategy = MeasureStrategy::kNaive;
  ResultSet naive = MustQuery(&solo, query);

  EXPECT_TRUE(testing::ResultsAgree(parallel, serial));
  EXPECT_TRUE(testing::ResultsAgree(parallel, naive));
}

// Property 4b: the section 6.4 inline fast path never changes results.
TEST_P(MeasurePropertyTest, InlineFastpathAgrees) {
  const char* query = R"sql(
    SELECT prodName, custName, AGGREGATE(r) AS v, AGGREGATE(n) AS c
    FROM EO WHERE revenue > 10
    GROUP BY ROLLUP(prodName, custName)
    ORDER BY prodName NULLS LAST, custName NULLS LAST
  )sql";
  db_.options().inline_visible_contexts = true;
  ResultSet fast = MustQuery(&db_, query);
  db_.options().inline_visible_contexts = false;
  ResultSet slow = MustQuery(&db_, query);
  EXPECT_TRUE(testing::ResultsAgree(fast, slow));
  // Also under a join, where the visible set deduplicates fan-out.
  MustExecute(&db_, R"sql(
    CREATE TABLE Customers (custName VARCHAR, custAge INTEGER);
    INSERT INTO Customers VALUES ('C0', 20), ('C1', 30), ('C2', 40), ('C3', 50);
    CREATE VIEW EC AS SELECT *, AVG(custAge) AS MEASURE avgAge FROM Customers
  )sql");
  const char* join_query = R"sql(
    SELECT o.prodName, AGGREGATE(c.avgAge) AS a
    FROM Orders AS o JOIN EC AS c USING (custName)
    GROUP BY o.prodName ORDER BY o.prodName
  )sql";
  db_.options().inline_visible_contexts = true;
  ResultSet jfast = MustQuery(&db_, join_query);
  db_.options().inline_visible_contexts = false;
  ResultSet jslow = MustQuery(&db_, join_query);
  EXPECT_TRUE(testing::ResultsAgree(jfast, jslow));
}

// Property 5: the textual expansion produces identical results.
TEST_P(MeasurePropertyTest, ExpansionAgrees) {
  const char* queries[] = {
      "SELECT prodName, AGGREGATE(r) AS v FROM EO GROUP BY prodName "
      "ORDER BY prodName",
      "SELECT prodName, r AT (ALL prodName) AS v FROM EO GROUP BY prodName "
      "ORDER BY prodName",
      "SELECT custName, r AT (SET custName = 'C1') AS v FROM EO "
      "GROUP BY custName ORDER BY custName",
      "SELECT prodName, AGGREGATE(r) AS v FROM EO WHERE revenue > 50 "
      "GROUP BY prodName ORDER BY prodName",
  };
  for (const char* q : queries) {
    auto expanded = db_.ExpandSql(q);
    ASSERT_TRUE(expanded.ok()) << expanded.status().ToString();
    ResultSet native = MustQuery(&db_, q);
    ResultSet plain = MustQuery(&db_, expanded.value());
    // The oracle's comparison, not strict NotDistinct: the rewrite may
    // legitimately change an INT64 column to DOUBLE and reassociate sums.
    EXPECT_TRUE(testing::ResultsAgree(native, plain)) << q;
  }
}

// Property 6: the four listing-12 formulations agree on random data.
TEST_P(MeasurePropertyTest, FourFormulationsAgree) {
  ResultSet r1 = MustQuery(&db_, R"sql(
    SELECT o.prodName, o.orderDate, o.revenue FROM Orders AS o
    WHERE o.revenue > (SELECT AVG(revenue) FROM Orders AS o1
                       WHERE o1.prodName = o.prodName)
    ORDER BY prodName, orderDate, revenue
  )sql");
  ResultSet r3 = MustQuery(&db_, R"sql(
    SELECT o.prodName, o.orderDate, o.revenue FROM
      (SELECT prodName, revenue, orderDate,
              AVG(revenue) OVER (PARTITION BY prodName) AS avgRevenue
       FROM Orders) AS o
    WHERE o.revenue > o.avgRevenue
    ORDER BY prodName, orderDate, revenue
  )sql");
  ResultSet r4 = MustQuery(&db_, R"sql(
    SELECT o.prodName, o.orderDate, o.revenue FROM
      (SELECT prodName, orderDate, revenue,
              AVG(revenue) AS MEASURE avgRevenue FROM Orders) AS o
    WHERE o.revenue > o.avgRevenue AT (WHERE prodName = o.prodName)
    ORDER BY prodName, orderDate, revenue
  )sql");
  EXPECT_TRUE(testing::ResultsAgree(r1, r3));
  EXPECT_TRUE(testing::ResultsAgree(r1, r4));
}

// Property 7: in a ROLLUP, the grand-total AGGREGATE equals the sum of the
// per-group AGGREGATEs (additive measure).
TEST_P(MeasurePropertyTest, RollupTotalEqualsSumOfLeaves) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, AGGREGATE(r) AS v FROM EO GROUP BY ROLLUP(prodName)
  )sql");
  int64_t leaves = 0, total = -1;
  for (const Row& row : rs.rows()) {
    if (row[0].is_null()) {
      total = row[1].int_val();
    } else {
      leaves += row[1].int_val();
    }
  }
  EXPECT_EQ(leaves, total);
}

// Property 8: COUNT measure with VISIBLE equals COUNT(*) per group when the
// measure table is the query table (same grain).
TEST_P(MeasurePropertyTest, CountMeasureMatchesCountStar) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT custName, COUNT(*) AS cs, AGGREGATE(n) AS cm
    FROM EO WHERE revenue > 20 GROUP BY custName
  )sql");
  for (const Row& row : rs.rows()) {
    EXPECT_TRUE(testing::CellsAgree(row[1], row[2]));
  }
}

// Property 9: SET to the current value is the identity.
TEST_P(MeasurePropertyTest, SetToCurrentIsIdentity) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT orderYear, AGGREGATE(r) AS v,
           r AT (SET orderYear = CURRENT orderYear) AS same
    FROM EO GROUP BY orderYear
  )sql");
  for (const Row& row : rs.rows()) {
    EXPECT_TRUE(testing::CellsAgree(row[1], row[2]));
  }
}

// Property 10: ALL on every group dimension equals AT (ALL) when the query
// has no WHERE clause.
TEST_P(MeasurePropertyTest, AllDimsEqualsAll) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, custName,
           r AT (ALL prodName custName) AS cleared, r AT (ALL) AS everything
    FROM EO GROUP BY prodName, custName
  )sql");
  for (const Row& row : rs.rows()) {
    EXPECT_TRUE(testing::CellsAgree(row[2], row[3]));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeasurePropertyTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

}  // namespace
}  // namespace msql

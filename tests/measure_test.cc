// Tests for measure definition, the closure property (tables with measures
// in and out of queries), grain preservation under joins, and diagnostics.

#include "engine/engine.h"
#include "gtest/gtest.h"
#include "tests/paper_fixture.h"

namespace msql {
namespace {

class MeasureTest : public ::testing::Test {
 protected:
  void SetUp() override { LoadPaperData(&db_); }
  Engine db_;
};

TEST_F(MeasureTest, DefiningViewKeepsRowCount) {
  MustExecute(&db_,
              "CREATE VIEW V AS SELECT *, SUM(revenue) AS MEASURE r FROM Orders");
  ResultSet rs = MustQuery(&db_, "SELECT prodName FROM V");
  EXPECT_EQ(rs.num_rows(), 5u);
}

TEST_F(MeasureTest, MeasureColumnTypeIsMeasureWrapped) {
  MustExecute(&db_,
              "CREATE VIEW V AS SELECT *, SUM(revenue) AS MEASURE r FROM Orders");
  ResultSet d = MustQuery(&db_, "DESCRIBE V");
  bool found = false;
  for (const Row& row : d.rows()) {
    if (row[0].str() == "r") {
      EXPECT_EQ(row[1].str(), "INTEGER MEASURE");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(MeasureTest, MeasuresOfDifferentValueTypes) {
  MustExecute(&db_, R"sql(
    CREATE VIEW V AS SELECT *,
      SUM(revenue) AS MEASURE total,
      AVG(revenue) AS MEASURE mean,
      COUNT(*) AS MEASURE n,
      MAX(orderDate) AS MEASURE latest
    FROM Orders
  )sql");
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, AGGREGATE(total) AS t, AGGREGATE(mean) AS m,
           AGGREGATE(n) AS c, AGGREGATE(latest) AS l
    FROM V GROUP BY prodName ORDER BY prodName
  )sql");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.Get(1, "t").int_val(), 17);
  EXPECT_NEAR(rs.Get(1, "m").double_val(), 17.0 / 3, 1e-9);
  EXPECT_EQ(rs.Get(1, "c").int_val(), 3);
  EXPECT_EQ(rs.Get(1, "l").ToString(), "2024-11-28");
}

TEST_F(MeasureTest, GrandTotalWithoutGroupBy) {
  MustExecute(&db_,
              "CREATE VIEW V AS SELECT *, SUM(revenue) AS MEASURE r FROM Orders");
  // AGGREGATE makes this an aggregate query with a single all-rows group.
  ResultSet rs = MustQuery(&db_, "SELECT AGGREGATE(r) AS total FROM V");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.Get(0, "total").int_val(), 25);
}

TEST_F(MeasureTest, SelectStarPropagatesMeasure) {
  MustExecute(&db_,
              "CREATE VIEW V AS SELECT *, SUM(revenue) AS MEASURE r FROM Orders");
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, AGGREGATE(r) AS total
    FROM (SELECT * FROM V) AS inner_v
    GROUP BY prodName ORDER BY prodName
  )sql");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.Get(1, "total").int_val(), 17);
}

TEST_F(MeasureTest, ProjectionRenamesDimensionWithProvenance) {
  MustExecute(&db_,
              "CREATE VIEW V AS SELECT *, SUM(revenue) AS MEASURE r FROM Orders");
  // Rename prodName; the renamed column still works as a dimension.
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT p, AGGREGATE(r) AS total
    FROM (SELECT prodName AS p, r FROM V) AS renamed
    GROUP BY p ORDER BY p
  )sql");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.Get(0, "total").int_val(), 5);   // Acme
  EXPECT_EQ(rs.Get(1, "total").int_val(), 17);  // Happy
}

TEST_F(MeasureTest, DerivedDimensionHasProvenance) {
  MustExecute(&db_,
              "CREATE VIEW V AS SELECT *, SUM(revenue) AS MEASURE r FROM Orders");
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT y, AGGREGATE(r) AS total
    FROM (SELECT YEAR(orderDate) AS y, r FROM V) AS derived
    GROUP BY y ORDER BY y
  )sql");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.Get(0, "total").int_val(), 4);   // 2022
  EXPECT_EQ(rs.Get(1, "total").int_val(), 14);  // 2023
  EXPECT_EQ(rs.Get(2, "total").int_val(), 7);   // 2024
}

TEST_F(MeasureTest, GroupingByNonDimensionGivesWholeTable) {
  // Grouping by a key with no provenance to the measure's source leaves the
  // context unconstrained (paper section 3.6 semantics for join keys).
  MustExecute(&db_, R"sql(
    CREATE VIEW C AS SELECT *, AVG(custAge) AS MEASURE avgAge FROM Customers
  )sql");
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT o.prodName, c.avgAge AS a
    FROM Orders AS o JOIN C AS c USING (custName)
    GROUP BY o.prodName ORDER BY o.prodName
  )sql");
  for (const Row& row : rs.rows()) {
    EXPECT_NEAR(row[1].double_val(), 27.0, 1e-9);  // (23+41+17)/3
  }
}

TEST_F(MeasureTest, JoinFanOutDoesNotDoubleCount) {
  // Two orders join to Alice; VISIBLE counts Alice once.
  MustExecute(&db_, R"sql(
    CREATE VIEW C AS SELECT *, SUM(custAge) AS MEASURE totalAge,
                            COUNT(*) AS MEASURE custCount
    FROM Customers
  )sql");
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT COUNT(*) AS joined_rows,
           AGGREGATE(c.custCount) AS customers,
           AGGREGATE(c.totalAge) AS age_sum,
           SUM(c.custAge) AS weighted_age_sum
    FROM Orders AS o JOIN C AS c USING (custName)
  )sql");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.Get(0, "joined_rows").int_val(), 5);
  EXPECT_EQ(rs.Get(0, "customers").int_val(), 3);     // grain preserved
  EXPECT_EQ(rs.Get(0, "age_sum").int_val(), 81);      // 23+41+17
  // Fan-out weighted: one term per joined row
  // (Alice 23, Bob 41, Alice 23, Celia 17, Bob 41).
  EXPECT_EQ(rs.Get(0, "weighted_age_sum").int_val(), 145);
}

TEST_F(MeasureTest, MeasuresFromBothJoinSides) {
  MustExecute(&db_, R"sql(
    CREATE VIEW EO AS SELECT *, SUM(revenue) AS MEASURE rev FROM Orders;
    CREATE VIEW EC AS SELECT *, COUNT(*) AS MEASURE nCust FROM Customers;
  )sql");
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT o.prodName, AGGREGATE(o.rev) AS rev, AGGREGATE(c.nCust) AS ncust
    FROM EO AS o JOIN EC AS c USING (custName)
    GROUP BY o.prodName ORDER BY o.prodName
  )sql");
  ASSERT_EQ(rs.num_rows(), 3u);
  // Happy: revenue 17 from orders; distinct customers Alice + Bob = 2.
  EXPECT_EQ(rs.Get(1, "rev").int_val(), 17);
  EXPECT_EQ(rs.Get(1, "ncust").int_val(), 2);
}

TEST_F(MeasureTest, MeasureSurvivesOrderByAndLimit) {
  MustExecute(&db_,
              "CREATE VIEW V AS SELECT *, SUM(revenue) AS MEASURE r FROM Orders");
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, AGGREGATE(r) AS total
    FROM (SELECT * FROM V ORDER BY revenue DESC LIMIT 3) AS top3
    GROUP BY prodName ORDER BY prodName
  )sql");
  // Top 3 by revenue: Happy 7, Happy 6, Acme 5. AGGREGATE is VISIBLE-scoped:
  // Happy = 13, Acme = 5.
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.Get(0, "total").int_val(), 5);
  EXPECT_EQ(rs.Get(1, "total").int_val(), 13);
}

TEST_F(MeasureTest, CountStarMeasure) {
  MustExecute(&db_,
              "CREATE VIEW V AS SELECT *, COUNT(*) AS MEASURE n FROM Orders");
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, AGGREGATE(n) AS n, n AT (ALL) AS total
    FROM V GROUP BY prodName ORDER BY prodName
  )sql");
  EXPECT_EQ(rs.Get(0, "n").int_val(), 1);
  EXPECT_EQ(rs.Get(1, "n").int_val(), 3);
  EXPECT_EQ(rs.Get(0, "total").int_val(), 5);
}

TEST_F(MeasureTest, MeasureWithCaseFormula) {
  MustExecute(&db_, R"sql(
    CREATE VIEW V AS SELECT *,
      CASE WHEN SUM(revenue) = 0 THEN NULL
           ELSE SUM(cost) * 1.0 / SUM(revenue) END AS MEASURE costRatio
    FROM Orders
  )sql");
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, AGGREGATE(costRatio) AS cr FROM V GROUP BY prodName
    ORDER BY prodName
  )sql");
  EXPECT_NEAR(rs.Get(0, "cr").double_val(), 2.0 / 5, 1e-9);
  EXPECT_NEAR(rs.Get(1, "cr").double_val(), 9.0 / 17, 1e-9);
}

TEST_F(MeasureTest, MeasureWithFilterClause) {
  MustExecute(&db_, R"sql(
    CREATE VIEW V AS SELECT *,
      SUM(revenue) FILTER (WHERE custName <> 'Bob') AS MEASURE nonBobRevenue
    FROM Orders
  )sql");
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, AGGREGATE(nonBobRevenue) AS r FROM V GROUP BY prodName
    ORDER BY prodName
  )sql");
  EXPECT_TRUE(rs.Get(0, "r").is_null());           // Acme: only Bob
  EXPECT_EQ(rs.Get(1, "r").int_val(), 13);         // Happy minus Bob's 4
}

// ---- diagnostics ----

TEST_F(MeasureTest, AsMeasureInAggregateQueryIsError) {
  auto r = db_.Query(
      "SELECT prodName, SUM(revenue) AS MEASURE r FROM Orders GROUP BY prodName");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kBind);
}

TEST_F(MeasureTest, NonAggregatableFormulaIsError) {
  auto r = db_.Query("SELECT *, revenue + 1 AS MEASURE bad FROM Orders");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kBind);
}

TEST_F(MeasureTest, GroupByMeasureIsError) {
  MustExecute(&db_,
              "CREATE VIEW V AS SELECT *, SUM(revenue) AS MEASURE r FROM Orders");
  auto r = db_.Query("SELECT r FROM V GROUP BY r");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kBind);
}

TEST_F(MeasureTest, MeasureAsAggregateArgumentIsError) {
  MustExecute(&db_,
              "CREATE VIEW V AS SELECT *, SUM(revenue) AS MEASURE r FROM Orders");
  auto r = db_.Query("SELECT SUM(r) FROM V GROUP BY prodName");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kBind);
}

TEST_F(MeasureTest, DistinctOnMeasureColumnIsError) {
  MustExecute(&db_,
              "CREATE VIEW V AS SELECT *, SUM(revenue) AS MEASURE r FROM Orders");
  auto r = db_.Query("SELECT DISTINCT prodName, r FROM V");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kBind);
}

TEST_F(MeasureTest, SubqueryInMeasureFormulaIsError) {
  auto r = db_.Query(
      "SELECT *, (SELECT MAX(custAge) FROM Customers) AS MEASURE bad "
      "FROM Orders");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kBind);
}

}  // namespace
}  // namespace msql

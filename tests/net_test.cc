// End-to-end tests for the msqld network front end: wire-protocol
// round-trips, the Hello/Query/Prepare/Bind/Execute lifecycle over a real
// loopback socket, plan-cache behavior observed from the client side,
// admission control, deadline propagation, and slow/half-closed clients.

#include <poll.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "gtest/gtest.h"
#include "net/admin.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "testing/compare.h"

namespace msql {
namespace {

constexpr char kSetup[] = R"(
CREATE TABLE Orders (prodName VARCHAR, custName VARCHAR, revenue INTEGER);
INSERT INTO Orders VALUES
  ('Happy', 'Alice', 6), ('Acme', 'Bob', 5), ('Happy', 'Alice', 7),
  ('Whizz', 'Celia', 3), ('Happy', 'Bob', 4);
CREATE VIEW EO AS SELECT *, SUM(revenue) AS MEASURE r FROM Orders;
)";

constexpr char kMeasureQuery[] =
    "SELECT prodName, AGGREGATE(r) AS v FROM EO GROUP BY prodName "
    "ORDER BY prodName";

class NetTest : public ::testing::Test {
 protected:
  void StartServer(net::ServerOptions options = {}) {
    EngineOptions engine_options;
    engine_options.enable_plan_cache = true;
    engine_options.enable_system_tables = true;
    engine_ = std::make_unique<Engine>(engine_options);
    ASSERT_TRUE(engine_->Execute(kSetup).ok());
    server_ = std::make_unique<net::MsqldServer>(engine_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  net::ClientOptions User(const std::string& user) {
    net::ClientOptions options;
    options.user = user;
    return options;
  }

  std::unique_ptr<Engine> engine_;
  std::unique_ptr<net::MsqldServer> server_;
};

// Minimal HTTP/1.1 GET against the admin endpoint: one request, read until
// the server closes (it always sends Connection: close).
std::string HttpGet(uint16_t port, const std::string& path) {
  auto sock = net::ConnectTo("127.0.0.1", port, 2000);
  if (!sock.ok()) return "";
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  if (!net::WriteAll(sock.value().fd(), request.data(), request.size(), 2000)
           .ok()) {
    return "";
  }
  std::string response;
  char buf[4096];
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    pollfd pfd{sock.value().fd(), POLLIN, 0};
    if (poll(&pfd, 1, 200) <= 0) continue;
    const ssize_t got = ::recv(sock.value().fd(), buf, sizeof(buf), 0);
    if (got <= 0) break;
    response.append(buf, static_cast<size_t>(got));
  }
  return response;
}

TEST(WireTest, ValueAndFrameRoundTrip) {
  std::string payload;
  net::PutValue(&payload, Value::Null());
  net::PutValue(&payload, Value::Bool(true));
  net::PutValue(&payload, Value::Int(-42));
  net::PutValue(&payload, Value::Double(2.5));
  net::PutValue(&payload, Value::String("héllo"));
  net::WireReader reader(payload);
  EXPECT_TRUE(reader.GetValue().value().is_null());
  EXPECT_EQ(reader.GetValue().value().bool_val(), true);
  EXPECT_EQ(reader.GetValue().value().int_val(), -42);
  EXPECT_EQ(reader.GetValue().value().double_val(), 2.5);
  EXPECT_EQ(reader.GetValue().value().str(), "héllo");
  EXPECT_TRUE(reader.AtEnd());
  // Underflow is a clean error, not a read past the end.
  EXPECT_FALSE(reader.GetValue().ok());

  net::ResultBatchMsg msg;
  msg.stmt_id = 7;
  msg.kind = 1;
  msg.last = true;
  msg.columns = {"a", "b"};
  msg.types = {TypeKind::kInt64, TypeKind::kString};
  msg.rows = {{Value::Int(1), Value::String("x")},
              {Value::Null(), Value::String("y")}};
  msg.total_rows = 2;
  msg.total_us = 1234;
  msg.plan_cache = 2;
  auto decoded = net::DecodeResultBatch(net::EncodeResultBatch(msg));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().stmt_id, 7u);
  EXPECT_EQ(decoded.value().columns, msg.columns);
  ASSERT_EQ(decoded.value().rows.size(), 2u);
  EXPECT_EQ(decoded.value().rows[0][0].int_val(), 1);
  EXPECT_TRUE(decoded.value().rows[1][0].is_null());
  EXPECT_EQ(decoded.value().total_us, 1234u);
  EXPECT_EQ(decoded.value().plan_cache, 2u);
}

TEST(WireTest, TryParseFrameHandlesPartialAndMalformedInput) {
  std::string buf;
  net::AppendFrame(&buf, net::FrameType::kQuery,
                   net::EncodeQuery({"SELECT 1", 0}));
  // Byte-at-a-time delivery: the parser reports "need more" until the
  // frame completes, then yields it exactly once.
  std::string partial;
  net::Frame frame;
  for (size_t i = 0; i + 1 < buf.size(); ++i) {
    partial.push_back(buf[i]);
    size_t off = 0;
    auto r = net::TryParseFrame(partial, &off, &frame);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.value()) << "frame yielded early at byte " << i;
  }
  partial.push_back(buf.back());
  size_t off = 0;
  auto complete = net::TryParseFrame(partial, &off, &frame);
  ASSERT_TRUE(complete.ok());
  ASSERT_TRUE(complete.value());
  EXPECT_EQ(off, buf.size());
  EXPECT_EQ(frame.type, net::FrameType::kQuery);

  // A declared payload over the cap is rejected before any buffering.
  std::string huge;
  net::PutU32(&huge, net::kMaxFramePayload + 1);
  net::PutU8(&huge, static_cast<uint8_t>(net::FrameType::kQuery));
  off = 0;
  EXPECT_FALSE(net::TryParseFrame(huge, &off, &frame).ok());

  // Unknown frame types are protocol errors.
  std::string unknown;
  net::PutU32(&unknown, 0);
  net::PutU8(&unknown, 250);
  off = 0;
  EXPECT_FALSE(net::TryParseFrame(unknown, &off, &frame).ok());
}

TEST_F(NetTest, QueryRoundTripAndPlanCacheWarmth) {
  StartServer();
  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), User("alice")).ok());
  EXPECT_EQ(client.server_banner(), "msqld");

  auto cold = client.Query(kMeasureQuery);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_EQ(cold.value().num_rows(), 3u);
  EXPECT_EQ(cold.value().Get(1, "v").int_val(), 17);  // Happy: 6 + 7 + 4
  ASSERT_NE(cold.value().stats(), nullptr);
  EXPECT_EQ(cold.value().stats()->plan_cache,
            QueryStats::PlanCacheOutcome::kMiss);

  auto warm = client.Query(kMeasureQuery);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_NE(warm.value().stats(), nullptr);
  EXPECT_EQ(warm.value().stats()->plan_cache,
            QueryStats::PlanCacheOutcome::kHit);

  // The warm result is byte-for-byte the cold result.
  auto diff = testing::DiffResults(cold.value(), warm.value(),
                                   testing::CompareOptions{});
  EXPECT_FALSE(diff.has_value()) << *diff;

  // Server-side errors arrive as typed Statuses, connection stays usable.
  auto bad = client.Query("SELECT nope FROM nothing");
  EXPECT_FALSE(bad.ok());
  auto again = client.Query("SELECT 1");
  EXPECT_TRUE(again.ok()) << again.status().ToString();
}

TEST_F(NetTest, PrepareBindExecuteLifecycle) {
  StartServer();
  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), User("bob")).ok());

  auto stmt = client.Prepare(
      "SELECT prodName, AGGREGATE(r) AS v FROM EO WHERE revenue > ? "
      "GROUP BY prodName ORDER BY prodName",
      {TypeKind::kInt64});
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt.value().param_count, 1);

  // Executing before Bind is refused.
  auto unbound = client.Execute(stmt.value());
  ASSERT_FALSE(unbound.ok());
  EXPECT_EQ(unbound.status().code(), ErrorCode::kInvalidArgument);

  ASSERT_TRUE(client.Bind(stmt.value(), {Value::Int(4)}).ok());
  auto first = client.Execute(stmt.value());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value().num_rows(), 2u);  // Acme 5, Happy 6+7

  // Rebind narrows the filter; the same bound plan serves the new value.
  ASSERT_TRUE(client.Bind(stmt.value(), {Value::Int(6)}).ok());
  auto second = client.Execute(stmt.value());
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second.value().num_rows(), 1u);  // Happy 7
  ASSERT_NE(second.value().stats(), nullptr);
  EXPECT_EQ(second.value().stats()->plan_cache,
            QueryStats::PlanCacheOutcome::kHit);

  // Parameter type mismatch on Bind is a typed error, not a disconnect.
  Status mismatch = client.Bind(stmt.value(), {Value::String("not a number")});
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(mismatch.message().find("parameter $1 type mismatch"),
            std::string::npos)
      << mismatch.ToString();
  Status arity = client.Bind(stmt.value(), {Value::Int(1), Value::Int(2)});
  ASSERT_FALSE(arity.ok());
  EXPECT_EQ(arity.code(), ErrorCode::kInvalidArgument);

  ASSERT_TRUE(client.CloseStatement(stmt.value()).ok());
  auto closed = client.Execute(stmt.value());
  ASSERT_FALSE(closed.ok());
  EXPECT_EQ(closed.status().code(), ErrorCode::kInvalidArgument);
}

TEST_F(NetTest, ExecuteSurvivesCatalogGenerationBump) {
  StartServer();
  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), User("carol")).ok());

  auto stmt = client.Prepare(kMeasureQuery, {});
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_TRUE(client.Execute(stmt.value()).ok());

  // Mutate the catalog underneath the prepared statement. The server
  // re-prepares transparently; the client sees fresh data, not kCatalog.
  ASSERT_TRUE(
      engine_->Execute("INSERT INTO Orders VALUES ('Acme', 'Dana', 9)").ok());
  auto after = client.Execute(stmt.value());
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.value().Get(0, "v").int_val(), 14);  // Acme: 5 + 9
}

TEST_F(NetTest, ProtocolViolationsGetCleanErrors) {
  StartServer();
  // A frame before Hello is refused with kPermission.
  {
    auto sock = net::ConnectTo("127.0.0.1", server_->port(), 2000);
    ASSERT_TRUE(sock.ok());
    std::string frames;
    net::AppendFrame(&frames, net::FrameType::kQuery,
                     net::EncodeQuery({"SELECT 1", 0}));
    ASSERT_TRUE(net::WriteAll(sock.value().fd(), frames.data(), frames.size(),
                              2000)
                    .ok());
    uint8_t header[net::kFrameHeaderBytes];
    ASSERT_TRUE(
        net::ReadExact(sock.value().fd(), header, sizeof(header), 2000).ok());
    EXPECT_EQ(header[4], static_cast<uint8_t>(net::FrameType::kError));
  }
  // Garbage bytes get an Error frame, then the server closes.
  {
    auto sock = net::ConnectTo("127.0.0.1", server_->port(), 2000);
    ASSERT_TRUE(sock.ok());
    std::string garbage = "this is not a frame and the length is absurd";
    garbage[0] = '\xff';
    garbage[1] = '\xff';
    garbage[2] = '\xff';
    garbage[3] = '\xff';
    ASSERT_TRUE(net::WriteAll(sock.value().fd(), garbage.data(),
                              garbage.size(), 2000)
                    .ok());
    uint8_t header[net::kFrameHeaderBytes];
    ASSERT_TRUE(
        net::ReadExact(sock.value().fd(), header, sizeof(header), 2000).ok());
    EXPECT_EQ(header[4], static_cast<uint8_t>(net::FrameType::kError));
  }
  // Version mismatch is refused.
  {
    auto sock = net::ConnectTo("127.0.0.1", server_->port(), 2000);
    ASSERT_TRUE(sock.ok());
    net::HelloMsg hello;
    hello.version = 999;
    hello.user = "eve";
    std::string frames;
    net::AppendFrame(&frames, net::FrameType::kHello, net::EncodeHello(hello));
    ASSERT_TRUE(net::WriteAll(sock.value().fd(), frames.data(), frames.size(),
                              2000)
                    .ok());
    uint8_t header[net::kFrameHeaderBytes];
    ASSERT_TRUE(
        net::ReadExact(sock.value().fd(), header, sizeof(header), 2000).ok());
    EXPECT_EQ(header[4], static_cast<uint8_t>(net::FrameType::kError));
  }
  // The server keeps serving healthy clients afterwards.
  net::Client healthy;
  ASSERT_TRUE(
      healthy.Connect("127.0.0.1", server_->port(), User("frank")).ok());
  EXPECT_TRUE(healthy.Query("SELECT 1").ok());
}

TEST_F(NetTest, HalfClosedClientIsDrainedNotWedged) {
  StartServer();
  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), User("gina")).ok());

  // Half-close: shut down our write side mid-conversation, as a crashed or
  // lazy client would. The server must notice EOF, drain, and release the
  // connection without wedging a handler thread.
  auto sock = net::ConnectTo("127.0.0.1", server_->port(), 2000);
  ASSERT_TRUE(sock.ok());
  net::HelloMsg hello;
  hello.user = "gina2";
  std::string frames;
  net::AppendFrame(&frames, net::FrameType::kHello, net::EncodeHello(hello));
  ASSERT_TRUE(net::WriteAll(sock.value().fd(), frames.data(), frames.size(),
                            2000)
                  .ok());
  shutdown(sock.value().fd(), SHUT_WR);

  // A healthy client on the same server stays fully served meanwhile.
  for (int i = 0; i < 5; ++i) {
    auto r = client.Query(kMeasureQuery);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  // The half-closed connection ends with EOF once the server drains it.
  char buf[4096];
  while (true) {
    Status st = net::ReadExact(sock.value().fd(), buf, 1, 5000);
    if (!st.ok()) {
      EXPECT_EQ(st.code(), ErrorCode::kIo) << st.ToString();
      break;
    }
  }
}

TEST_F(NetTest, SlowClientIsShedWithResourceExhausted) {
  net::ServerOptions options;
  // A response bigger than the output buffer cannot be delivered — it must
  // be shed with a typed error rather than buffered without bound.
  options.max_outbuf_bytes = 512;
  StartServer(options);
  ASSERT_TRUE(engine_
                  ->Execute("CREATE TABLE Wide (s VARCHAR); "
                            "INSERT INTO Wide VALUES "
                            "('0123456789012345678901234567890123456789')")
                  .ok());
  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), User("hank")).ok());
  auto big = client.Query(
      "SELECT w1.s, w2.s, o1.revenue FROM Wide w1, Wide w2, "
      "Orders o1, Orders o2, Orders o3");
  ASSERT_FALSE(big.ok());
  EXPECT_EQ(big.status().code(), ErrorCode::kResourceExhausted)
      << big.status().ToString();

  // The metric recorded the shed and the server still serves new clients.
  EXPECT_NE(engine_->MetricsText().find("msql_net_slow_client_sheds_total"),
            std::string::npos);
  net::Client next;
  ASSERT_TRUE(next.Connect("127.0.0.1", server_->port(), User("iris")).ok());
  EXPECT_TRUE(next.Query("SELECT 1").ok());
}

TEST_F(NetTest, PerUserAdmissionRateLimiting) {
  net::ServerOptions options;
  options.per_user_rate_limit_qps = 1.0;
  options.per_user_rate_limit_burst = 1;
  options.max_admission_wait_ms = 5;
  StartServer(options);

  net::Client flooder;
  ASSERT_TRUE(
      flooder.Connect("127.0.0.1", server_->port(), User("flood")).ok());
  int shed = 0;
  for (int i = 0; i < 5; ++i) {
    auto r = flooder.Query("SELECT 1");
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), ErrorCode::kResourceExhausted)
          << r.status().ToString();
      ++shed;
    }
  }
  EXPECT_GE(shed, 1) << "burst of 5 at 1 qps should shed";

  // Another user has its own bucket and is unaffected.
  net::Client other;
  ASSERT_TRUE(other.Connect("127.0.0.1", server_->port(), User("calm")).ok());
  auto r = other.Query("SELECT 1");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST_F(NetTest, DeadlinePropagatesFromWire) {
  StartServer();
  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), User("jane")).ok());
  // A cross join large enough that 1ms cannot finish it: the wire-level
  // timeout must surface as kDeadlineExceeded, proving the budget reached
  // the engine's guard.
  auto r = client.Query(
      "SELECT COUNT(*) FROM Orders a, Orders b, Orders c, Orders d, "
      "Orders e, Orders f, Orders g, Orders h",
      /*timeout_ms=*/1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kDeadlineExceeded)
      << r.status().ToString();
  // Connection unharmed.
  EXPECT_TRUE(client.Query("SELECT 1").ok());
}

TEST_F(NetTest, ConnectionLimitPerUser) {
  net::ServerOptions options;
  options.max_connections_per_user = 1;
  StartServer(options);
  net::Client first;
  ASSERT_TRUE(first.Connect("127.0.0.1", server_->port(), User("solo")).ok());
  net::Client second;
  Status refused = second.Connect("127.0.0.1", server_->port(), User("solo"));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), ErrorCode::kResourceExhausted)
      << refused.ToString();
  // Dropping the first connection frees the slot.
  first.Disconnect();
  net::Client third;
  Status retry = Status::Ok();
  for (int i = 0; i < 50; ++i) {
    retry = third.Connect("127.0.0.1", server_->port(), User("solo"));
    if (retry.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(retry.ok()) << retry.ToString();
}

TEST_F(NetTest, ConcurrentClientsAllServed) {
  net::ServerOptions options;
  options.num_handler_threads = 3;
  options.num_worker_threads = 4;
  StartServer(options);
  constexpr int kClients = 8;
  constexpr int kQueriesEach = 10;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      net::Client client;
      if (!client
               .Connect("127.0.0.1", server_->port(),
                        User("user" + std::to_string(c)))
               .ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int q = 0; q < kQueriesEach; ++q) {
        auto r = client.Query(kMeasureQuery);
        if (!r.ok() || r.value().num_rows() != 3) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Every statement of every client hit the shared plan cache after the
  // first fill.
  EXPECT_GE(engine_->plan_cache().stats().hits,
            static_cast<uint64_t>(kClients * kQueriesEach - kClients));
}

TEST_F(NetTest, UntracedStatementsCarryNoPhaseFooter) {
  StartServer();
  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), User("lena")).ok());
  auto r = client.Query(kMeasureQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_NE(r.value().stats(), nullptr);
  // The trailer still carries totals, but without kTraceFlagEnabled the
  // server never measures phases: the footer is absent and the phase
  // fields stay zero (the zero-overhead disabled path).
  EXPECT_GT(r.value().stats()->total_us, 0);
  EXPECT_EQ(r.value().stats()->parse_us, 0);
  EXPECT_EQ(r.value().stats()->execute_us, 0);
  EXPECT_EQ(r.value().stats()->render_us, 0);
  // Nothing entered the server's trace ring either.
  EXPECT_TRUE(engine_->RecentTraces().empty());
}

TEST_F(NetTest, TraceFooterCarriesPhaseBreakdown) {
  StartServer();
  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), User("mia")).ok());
  client.SetTrace(true, "req-42/alpha");

  auto r = client.Query(kMeasureQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& stats = r.value().stats();
  ASSERT_NE(stats, nullptr);
  // The footer's phases are real measurements: execute ran, and the
  // pipeline phases cannot exceed the server's total.
  EXPECT_GT(stats->execute_us, 0);
  const int64_t pipeline_us = stats->bind_us + stats->measure_expand_us +
                              stats->plan_us + stats->execute_us +
                              stats->render_us;
  EXPECT_GT(pipeline_us, 0);
  EXPECT_LE(pipeline_us, stats->total_us);

  // The same statement also works through the prepared path.
  auto stmt = client.Prepare(kMeasureQuery, {});
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto executed = client.Execute(stmt.value());
  ASSERT_TRUE(executed.ok()) << executed.status().ToString();
  ASSERT_NE(executed.value().stats(), nullptr);
  EXPECT_GT(executed.value().stats()->execute_us, 0);

  // Server-side, the trace ring picked up the client's correlation id and
  // the connection's peer identity.
  auto traces = engine_->RecentTraces();
  ASSERT_FALSE(traces.empty());
  bool found = false;
  for (const auto& trace : traces) {
    if (trace->trace_id() == "req-42/alpha") {
      found = true;
      EXPECT_NE(trace->peer().find("127.0.0.1"), std::string::npos)
          << trace->peer();
    }
  }
  EXPECT_TRUE(found) << "no trace carried the wire trace id";
}

TEST_F(NetTest, MalformedTraceIdsAreRejected) {
  StartServer();
  // Oversized: one byte past kMaxTraceIdBytes.
  {
    net::Client client;
    ASSERT_TRUE(
        client.Connect("127.0.0.1", server_->port(), User("nina")).ok());
    client.SetTrace(true, std::string(net::kMaxTraceIdBytes + 1, 'x'));
    auto r = client.Query("SELECT 1");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::kInvalidArgument)
        << r.status().ToString();
  }
  // Non-printable / whitespace bytes are refused too.
  {
    net::Client client;
    ASSERT_TRUE(
        client.Connect("127.0.0.1", server_->port(), User("nina")).ok());
    client.SetTrace(true, "has space");
    auto r = client.Query("SELECT 1");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::kInvalidArgument)
        << r.status().ToString();
  }
  // A maximal valid id passes.
  {
    net::Client client;
    ASSERT_TRUE(
        client.Connect("127.0.0.1", server_->port(), User("nina")).ok());
    client.SetTrace(true, std::string(net::kMaxTraceIdBytes, 'y'));
    auto r = client.Query("SELECT 1");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }
}

TEST_F(NetTest, SystemTablesQueryableOverWire) {
  StartServer();
  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), User("omar")).ok());

  // The querying connection sees itself: busy, with its own statement.
  auto conns = client.Query(
      "SELECT user, state, statement FROM msql_system.connections "
      "ORDER BY id");
  ASSERT_TRUE(conns.ok()) << conns.status().ToString();
  ASSERT_EQ(conns.value().num_rows(), 1u);
  EXPECT_EQ(conns.value().Get(0, "user").str(), "omar");
  EXPECT_EQ(conns.value().Get(0, "state").str(), "busy");
  EXPECT_NE(conns.value().Get(0, "statement").str().find("msql_system"),
            std::string::npos);

  // Queries land in msql_system.queries once traced; measures work over
  // system tables like over any other relation.
  client.SetTrace(true, "sys-probe");
  ASSERT_TRUE(client.Query(kMeasureQuery).ok());
  client.SetTrace(false);
  ASSERT_TRUE(engine_
                  ->Execute("CREATE VIEW QT AS SELECT *, "
                            "SUM(total_us) AS MEASURE total FROM "
                            "msql_system.queries")
                  .ok());
  auto agg = client.Query(
      "SELECT status, AGGREGATE(total) AS t FROM QT WHERE trace_id = "
      "'sys-probe' GROUP BY status");
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
  ASSERT_EQ(agg.value().num_rows(), 1u);
  EXPECT_EQ(agg.value().Get(0, "status").str(), "ok");
  EXPECT_GT(agg.value().Get(0, "t").int_val(), 0);

  // msql_system.metrics is a plain relation too.
  auto metric = client.Query(
      "SELECT value FROM msql_system.metrics "
      "WHERE name = 'msql_net_connections_active'");
  ASSERT_TRUE(metric.ok()) << metric.status().ToString();
  ASSERT_EQ(metric.value().num_rows(), 1u);
  EXPECT_GE(metric.value().Get(0, "value").double_val(), 1.0);

  // Prepared statements over system tables are refused: the snapshot would
  // go stale inside the bound plan.
  auto stmt = client.Prepare("SELECT id FROM msql_system.connections", {});
  ASSERT_FALSE(stmt.ok());
  EXPECT_EQ(stmt.status().code(), ErrorCode::kInvalidArgument);

  // And text statements over them never warm the plan cache.
  auto once = client.Query("SELECT COUNT(*) AS c FROM msql_system.queries");
  auto twice = client.Query("SELECT COUNT(*) AS c FROM msql_system.queries");
  ASSERT_TRUE(once.ok() && twice.ok());
  ASSERT_NE(twice.value().stats(), nullptr);
  EXPECT_NE(twice.value().stats()->plan_cache,
            QueryStats::PlanCacheOutcome::kHit);
}

TEST_F(NetTest, AdminEndpointsServeObservability) {
  net::ServerOptions options;
  options.admin_port = 0;  // ephemeral
  StartServer(options);
  ASSERT_GT(server_->admin_port(), 0);
  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), User("pat")).ok());
  ASSERT_TRUE(client.Query(kMeasureQuery).ok());

  const std::string health = HttpGet(server_->admin_port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string metrics = HttpGet(server_->admin_port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("msql_query_duration_ms"), std::string::npos);
  EXPECT_NE(metrics.find("msql_net_connections_active"), std::string::npos);
  EXPECT_NE(metrics.find("msql_net_conn_idle_active"), std::string::npos);

  const std::string statusz = HttpGet(server_->admin_port(), "/statusz");
  EXPECT_NE(statusz.find("200 OK"), std::string::npos);
  EXPECT_NE(statusz.find("\"user\": \"pat\""), std::string::npos) << statusz;

  const std::string tracez =
      HttpGet(server_->admin_port(), "/tracez?min_ms=0");
  EXPECT_NE(tracez.find("200 OK"), std::string::npos);

  EXPECT_NE(HttpGet(server_->admin_port(), "/nope").find("404"),
            std::string::npos);

  // Shutting the server down takes the admin plane with it.
  const uint16_t admin_port = server_->admin_port();
  server_->Stop();
  EXPECT_TRUE(HttpGet(admin_port, "/healthz").empty());
  server_.reset();
  engine_.reset();
}

TEST(AdminServerTest, HealthzFlipsWhenDraining) {
  obs::MetricsRegistry registry;
  std::atomic<bool> healthy{true};
  net::AdminHooks hooks;
  hooks.healthy = [&] { return healthy.load(); };
  net::AdminServer admin("127.0.0.1", 0, hooks, &registry);
  ASSERT_TRUE(admin.Start().ok());

  EXPECT_NE(HttpGet(admin.port(), "/healthz").find("200 OK"),
            std::string::npos);
  // Exactly what MsqldServer::Stop does first: flip the readiness source.
  healthy.store(false);
  const std::string draining = HttpGet(admin.port(), "/healthz");
  EXPECT_NE(draining.find("503"), std::string::npos) << draining;
  EXPECT_NE(draining.find("draining"), std::string::npos);
  admin.Stop();
}

TEST_F(NetTest, GracefulShutdownWithOpenConnections) {
  StartServer();
  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), User("kate")).ok());
  ASSERT_TRUE(client.Query("SELECT 1").ok());
  server_->Stop();
  // The closed server refuses further traffic cleanly.
  auto r = client.Query("SELECT 1");
  EXPECT_FALSE(r.ok());
  server_.reset();
  engine_.reset();
}

}  // namespace
}  // namespace msql

// Tests for NULL handling in measure semantics — paper footnote 1: the
// evaluation context uses IS NOT DISTINCT FROM, so NULL dimension values
// form real groups that measures resolve correctly. Also covers measures
// over empty tables (the section 6.5 question) and NULL-producing contexts.

#include "engine/engine.h"
#include "gtest/gtest.h"
#include "tests/paper_fixture.h"

namespace msql {
namespace {

class NullSemanticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(&db_, R"sql(
      CREATE TABLE Orders (prodName VARCHAR, region VARCHAR, revenue INTEGER);
      INSERT INTO Orders VALUES
        ('pen',  'east', 10),
        ('pen',  NULL,   20),
        (NULL,   'east', 30),
        (NULL,   NULL,   40),
        ('book', 'west', 50);
      CREATE VIEW EO AS SELECT *, SUM(revenue) AS MEASURE r,
                               COUNT(*) AS MEASURE n
      FROM Orders
    )sql");
  }
  Engine db_;
};

// Paper footnote 1: grouping by a NULLable dimension, the NULL group's
// context must match the NULL rows (IS NOT DISTINCT FROM, not =).
TEST_F(NullSemanticsTest, NullGroupKeyMatchesNullRows) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, AGGREGATE(r) AS rev, AGGREGATE(n) AS cnt
    FROM EO GROUP BY prodName ORDER BY prodName
  )sql");
  ASSERT_EQ(rs.num_rows(), 3u);  // NULL, book, pen
  // NULLS FIRST: the NULL product group.
  EXPECT_TRUE(rs.Get(0, "prodName").is_null());
  EXPECT_EQ(rs.Get(0, "rev").int_val(), 70);  // 30 + 40
  EXPECT_EQ(rs.Get(0, "cnt").int_val(), 2);
  EXPECT_EQ(rs.Get(1, "rev").int_val(), 50);  // book
  EXPECT_EQ(rs.Get(2, "rev").int_val(), 30);  // pen
}

// The bare measure agrees with a plain GROUP BY over NULL keys.
TEST_F(NullSemanticsTest, MeasureAgreesWithPlainGroupByOnNulls) {
  ResultSet m = MustQuery(&db_, R"sql(
    SELECT prodName, region, AGGREGATE(r) AS v
    FROM EO GROUP BY prodName, region ORDER BY prodName, region
  )sql");
  ResultSet p = MustQuery(&db_, R"sql(
    SELECT prodName, region, SUM(revenue) AS v
    FROM Orders GROUP BY prodName, region ORDER BY prodName, region
  )sql");
  ASSERT_EQ(m.num_rows(), p.num_rows());
  for (size_t i = 0; i < m.num_rows(); ++i) {
    EXPECT_TRUE(Value::NotDistinct(m.Get(i, "v"), p.Get(i, "v")));
  }
}

// SET dim = NULL pins the dimension to the NULL group.
TEST_F(NullSemanticsTest, SetToNullSelectsNullGroup) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, r AT (SET prodName = NULL) AS null_group
    FROM EO GROUP BY prodName ORDER BY prodName
  )sql");
  for (const Row& row : rs.rows()) {
    EXPECT_EQ(row[1].int_val(), 70);
  }
}

// ROLLUP: the subtotal row (key aggregated away) differs from the genuine
// NULL-key group; GROUPING() tells them apart and each gets the right
// measure context.
TEST_F(NullSemanticsTest, RollupDistinguishesNullGroupFromTotal) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, GROUPING(prodName) AS g, AGGREGATE(r) AS v
    FROM EO GROUP BY ROLLUP(prodName)
  )sql");
  ASSERT_EQ(rs.num_rows(), 4u);  // pen, book, NULL-group, grand total
  bool saw_null_group = false, saw_total = false;
  for (const Row& row : rs.rows()) {
    if (row[0].is_null() && row[1].int_val() == 0) {
      saw_null_group = true;
      EXPECT_EQ(row[2].int_val(), 70);
    }
    if (row[0].is_null() && row[1].int_val() == 1) {
      saw_total = true;
      EXPECT_EQ(row[2].int_val(), 150);
    }
  }
  EXPECT_TRUE(saw_null_group);
  EXPECT_TRUE(saw_total);
}

// Measures over an empty table (the question raised in section 6.5): SUM
// yields NULL, COUNT yields 0; contexts over no rows never error.
TEST_F(NullSemanticsTest, MeasureOverEmptyTable) {
  MustExecute(&db_, R"sql(
    CREATE TABLE Nothing (k VARCHAR, v INTEGER);
    CREATE VIEW EN AS SELECT *, SUM(v) AS MEASURE s, COUNT(*) AS MEASURE c
    FROM Nothing
  )sql");
  // Grand total over an empty table: aggregate query with an empty grouping
  // set still emits one row.
  ResultSet rs = MustQuery(&db_, "SELECT AGGREGATE(s) AS s, AGGREGATE(c) AS c FROM EN");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_TRUE(rs.Get(0, "s").is_null());
  EXPECT_EQ(rs.Get(0, "c").int_val(), 0);
  // Grouped: no groups, no rows.
  ResultSet grouped = MustQuery(&db_, "SELECT k, AGGREGATE(s) FROM EN GROUP BY k");
  EXPECT_EQ(grouped.num_rows(), 0u);
}

// A context that admits no rows: SUM is NULL, COUNT is 0 (SQL aggregate
// semantics carry through the measure).
TEST_F(NullSemanticsTest, EmptyContext) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName,
           r AT (SET prodName = 'ghost') AS sum_empty,
           n AT (SET prodName = 'ghost') AS count_empty
    FROM EO GROUP BY prodName ORDER BY prodName
  )sql");
  for (const Row& row : rs.rows()) {
    EXPECT_TRUE(row[1].is_null());
    EXPECT_EQ(row[2].int_val(), 0);
  }
}

// NULL-valued SET expressions (e.g. CURRENT of an unpinned dim) pin the
// dimension to NULL rather than erroring.
TEST_F(NullSemanticsTest, NullSetValue) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT region, r AT (SET prodName = CURRENT prodName) AS v
    FROM EO GROUP BY region ORDER BY region
  )sql");
  // prodName is unpinned at this call site, so CURRENT prodName is NULL and
  // the context becomes {region = current, prodName IS NULL}: the region
  // group term remains alongside the SET term.
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_TRUE(rs.Get(0, "region").is_null());   // NULL region, NULL product
  EXPECT_EQ(rs.Get(0, "v").int_val(), 40);
  EXPECT_EQ(rs.Get(1, "region").str(), "east");  // east, NULL product
  EXPECT_EQ(rs.Get(1, "v").int_val(), 30);
  EXPECT_EQ(rs.Get(2, "region").str(), "west");  // west has no NULL product
  EXPECT_TRUE(rs.Get(2, "v").is_null());
}

// Measures whose formula arguments contain NULLs skip them like SQL
// aggregates do.
TEST_F(NullSemanticsTest, NullsInsideAggregateArguments) {
  MustExecute(&db_, R"sql(
    CREATE TABLE T (k VARCHAR, v INTEGER);
    INSERT INTO T VALUES ('a', 1), ('a', NULL), ('b', NULL);
    CREATE VIEW ET AS SELECT *, SUM(v) AS MEASURE s, AVG(v) AS MEASURE a,
                             COUNT(v) AS MEASURE cv, COUNT(*) AS MEASURE cs
    FROM T
  )sql");
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT k, AGGREGATE(s) AS s, AGGREGATE(a) AS a,
           AGGREGATE(cv) AS cv, AGGREGATE(cs) AS cs
    FROM ET GROUP BY k ORDER BY k
  )sql");
  EXPECT_EQ(rs.Get(0, "s").int_val(), 1);
  EXPECT_DOUBLE_EQ(rs.Get(0, "a").double_val(), 1.0);
  EXPECT_EQ(rs.Get(0, "cv").int_val(), 1);
  EXPECT_EQ(rs.Get(0, "cs").int_val(), 2);
  EXPECT_TRUE(rs.Get(1, "s").is_null());  // b: only NULLs
  EXPECT_EQ(rs.Get(1, "cv").int_val(), 0);
}

}  // namespace
}  // namespace msql

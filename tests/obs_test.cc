// Tests for the observability layer (docs/OBSERVABILITY.md): the metrics
// registry and its Prometheus text exposition, query tracing (span nesting,
// ring-buffer retention, slow-query log JSON), per-query ResultSet stats,
// and graceful degradation when a trace sink fails.

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/session.h"
#include "tests/paper_fixture.h"

namespace msql {
namespace {

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, CountersAndGauges) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("msql_test_events_total", "events");
  ASSERT_NE(c, nullptr);
  c->Increment();
  c->Increment(4);
  EXPECT_EQ(c->value(), 5u);
  // Re-registration returns the same instrument.
  EXPECT_EQ(reg.GetCounter("msql_test_events_total"), c);

  obs::Gauge* g = reg.GetGauge("msql_test_depth", "depth");
  g->Set(2.5);
  g->Add(1.0);
  g->Add(-2.0);
  EXPECT_DOUBLE_EQ(g->value(), 1.5);
}

TEST(MetricsRegistryTest, KindMismatchReturnsNull) {
  obs::MetricsRegistry reg;
  ASSERT_NE(reg.GetCounter("msql_test_events_total"), nullptr);
  EXPECT_EQ(reg.GetGauge("msql_test_events_total"), nullptr);
  EXPECT_EQ(reg.GetHistogram("msql_test_events_total", "", {1.0}), nullptr);
}

TEST(MetricsRegistryTest, HistogramBuckets) {
  obs::MetricsRegistry reg;
  obs::Histogram* h =
      reg.GetHistogram("msql_test_wait_ms", "wait", {1.0, 10.0, 100.0});
  ASSERT_NE(h, nullptr);
  h->Observe(0.5);    // <= 1
  h->Observe(1.0);    // <= 1 (bounds are inclusive)
  h->Observe(7.0);    // <= 10
  h->Observe(99.0);   // <= 100
  h->Observe(1e6);    // +Inf overflow
  EXPECT_EQ(h->count(), 5u);
  EXPECT_DOUBLE_EQ(h->sum(), 0.5 + 1.0 + 7.0 + 99.0 + 1e6);
  const std::vector<uint64_t> buckets = h->bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(MetricsRegistryTest, PrometheusTextFormat) {
  obs::MetricsRegistry reg;
  reg.GetCounter("msql_test_events_total", "Number of events")->Increment(3);
  reg.GetGauge("msql_test_depth", "Current depth")->Set(2);
  obs::Histogram* h = reg.GetHistogram("msql_test_wait_ms", "Wait", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5000.0);

  const std::string text = reg.Text();
  EXPECT_NE(text.find("# HELP msql_test_events_total Number of events"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE msql_test_events_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("msql_test_events_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE msql_test_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE msql_test_wait_ms histogram"),
            std::string::npos);
  // Cumulative buckets: the +Inf bucket equals the count.
  EXPECT_NE(text.find("msql_test_wait_ms_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("msql_test_wait_ms_bucket{le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("msql_test_wait_ms_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("msql_test_wait_ms_count 2"), std::string::npos);
  EXPECT_NE(text.find("msql_test_wait_ms_sum"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.options().enable_tracing = true;
    LoadPaperData(&db_);
    MustExecute(&db_,
                "CREATE VIEW EO AS SELECT *, SUM(revenue) AS MEASURE r "
                "FROM Orders");
  }

  Engine db_;
};

const obs::TraceSpan* FindChild(const obs::TraceSpan& parent,
                                const char* name) {
  for (const auto& child : parent.children) {
    if (child->name == name) return child.get();
  }
  return nullptr;
}

TEST_F(ObsTraceTest, SpansNestByPhase) {
  MustQuery(&db_, "SELECT prodName, AGGREGATE(r) FROM EO GROUP BY prodName");
  auto traces = db_.RecentTraces();
  ASSERT_FALSE(traces.empty());
  const obs::TracePtr& trace = traces[0];  // newest first
  EXPECT_TRUE(trace->ok());
  EXPECT_EQ(trace->rows_returned(), 3u);
  EXPECT_GT(trace->total_us(), 0);

  const obs::TraceSpan& root = trace->root();
  EXPECT_EQ(root.name, "query");
  const char* phases[] = {"parse", "bind", "measure-expand", "plan",
                          "execute", "render"};
  for (const char* phase : phases) {
    EXPECT_NE(FindChild(root, phase), nullptr) << "missing span " << phase;
  }
  // Phases completed cleanly and appear in pipeline order.
  std::vector<std::string> order;
  for (const auto& child : root.children) {
    EXPECT_TRUE(child->outcome.empty()) << child->name << ": "
                                        << child->outcome;
    order.push_back(child->name);
  }
  EXPECT_LT(std::find(order.begin(), order.end(), "parse") - order.begin(),
            std::find(order.begin(), order.end(), "execute") - order.begin());
  // The execute span charged guard memory.
  EXPECT_GT(FindChild(root, "execute")->guard_bytes, 0u);
}

TEST_F(ObsTraceTest, FailedQueryTraceCarriesOutcome) {
  auto r = db_.Query("SELECT nonexistent FROM EO");
  ASSERT_FALSE(r.ok());
  auto traces = db_.RecentTraces();
  ASSERT_FALSE(traces.empty());
  EXPECT_FALSE(traces[0]->ok());
  EXPECT_EQ(traces[0]->error_code(), ErrorCode::kBind);
  const obs::TraceSpan* bind = FindChild(traces[0]->root(), "bind");
  ASSERT_NE(bind, nullptr);
  EXPECT_EQ(bind->outcome, ErrorCodeName(ErrorCode::kBind));
}

TEST(ObsRingTest, RingBufferEvictsOldest) {
  EngineOptions options;
  options.enable_tracing = true;
  options.trace_ring_capacity = 2;
  Engine db(options);
  LoadPaperData(&db);
  MustQuery(&db, "SELECT 1");
  MustQuery(&db, "SELECT 2");
  MustQuery(&db, "SELECT 3");
  auto traces = db.RecentTraces();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0]->sql(), "SELECT 3");  // newest first
  EXPECT_EQ(traces[1]->sql(), "SELECT 2");
  // Ids are monotonically increasing.
  EXPECT_GT(traces[0]->id(), traces[1]->id());
}

TEST_F(ObsTraceTest, PerQueryStatsTravelWithResult) {
  auto r = db_.Query(
      "SELECT prodName, AGGREGATE(r) FROM EO GROUP BY prodName");
  ASSERT_TRUE(r.ok());
  ASSERT_NE(r.value().stats(), nullptr);
  const QueryStats& stats = *r.value().stats();
  EXPECT_GT(stats.measure_evals, 0u);
  EXPECT_GT(stats.rows_charged, 0u);
  EXPECT_GT(stats.bytes_charged, 0u);
  EXPECT_EQ(stats.depth, 0);
  // The trace carries the same stats.
  auto traces = db_.RecentTraces();
  ASSERT_FALSE(traces.empty());
  EXPECT_EQ(traces[0]->stats().measure_evals, stats.measure_evals);
}

TEST_F(ObsTraceTest, SlowQueryLogWritesJson) {
  auto stream = std::make_shared<std::ostringstream>();
  // Threshold 0: every traced query is logged.
  struct StreamKeeper : obs::SlowQueryLogSink {
    explicit StreamKeeper(std::shared_ptr<std::ostringstream> s)
        : obs::SlowQueryLogSink(0, s.get()), stream(std::move(s)) {}
    std::shared_ptr<std::ostringstream> stream;
  };
  db_.AddTraceSink(std::make_shared<StreamKeeper>(stream));
  MustQuery(&db_, "SELECT prodName, AGGREGATE(r) FROM EO GROUP BY prodName");
  const std::string line = stream->str();
  EXPECT_NE(line.find("\"sql\""), std::string::npos);
  EXPECT_NE(line.find("\"spans\""), std::string::npos);
  EXPECT_NE(line.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(line.find("\"stats\""), std::string::npos);
  EXPECT_EQ(line.back(), '\n');
}

TEST_F(ObsTraceTest, FailingSinkDoesNotFailQueries) {
  struct FailingSink : obs::TraceSink {
    Status Emit(const obs::TracePtr&) override {
      return Status(ErrorCode::kIo, "sink unavailable");
    }
  };
  db_.AddTraceSink(std::make_shared<FailingSink>());
  obs::Counter* errors =
      db_.metrics().GetCounter("msql_obs_sink_errors_total");
  ASSERT_NE(errors, nullptr);
  const uint64_t before = errors->value();
  MustQuery(&db_, "SELECT prodName FROM Orders");
  EXPECT_GT(errors->value(), before);
  // The ring buffer sink still received the trace.
  ASSERT_FALSE(db_.RecentTraces().empty());
}

TEST_F(ObsTraceTest, SessionIdentityOnTraces) {
  SessionPtr session = db_.CreateSession();
  session->options().enable_tracing = true;
  ASSERT_TRUE(session->Query("SELECT 42").ok());
  auto traces = db_.RecentTraces();
  ASSERT_FALSE(traces.empty());
  EXPECT_EQ(traces[0]->session_id(), session->id());
}

TEST(ObsMetricsTextTest, EngineExposesCoreMetrics) {
  Engine db;
  LoadPaperData(&db);
  MustQuery(&db, "SELECT prodName FROM Orders");
  { SessionPtr s = db.CreateSession(); }
  const std::string text = db.MetricsText();
  EXPECT_NE(text.find("# TYPE msql_queries_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE msql_query_duration_ms histogram"),
            std::string::npos);
  EXPECT_NE(text.find("msql_query_duration_ms_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE msql_sessions_active gauge"), std::string::npos);
  EXPECT_NE(text.find("msql_sessions_created_total 1"), std::string::npos);
  EXPECT_NE(text.find("msql_sessions_active 0"), std::string::npos);
  EXPECT_NE(text.find("msql_shared_cache_hit_ratio"), std::string::npos);
}

TEST(ObsDisabledTest, TracingOffLeavesRingEmpty) {
  Engine db;
  LoadPaperData(&db);
  MustQuery(&db, "SELECT prodName FROM Orders");
  EXPECT_TRUE(db.RecentTraces().empty());
  // Per-query stats are populated regardless of tracing.
  auto r = db.Query("SELECT prodName FROM Orders");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.value().stats(), nullptr);
}

}  // namespace
}  // namespace msql

// Overload chaos test (stress label): several sessions sustain an
// over-capacity submission stream while the fault injector fails every
// grouped-index build, with deadlines and cancellation mixed in. The
// system must not deadlock, must resolve every submission (no lost
// completions), every terminal status must be one of the documented
// admission/execution codes, and the grouped-build circuit breaker must
// open under the fault burst and recover (half-open probes -> closed)
// once the fault clears (docs/ROBUSTNESS.md).
//
// Determinism: the fault fires on a fixed named site with a fixed budget,
// retry jitter is seeded, and every assertion is about invariants
// (status sets, conservation of completions, breaker state transitions),
// not about timing. On failure the test writes a repro artifact (the
// configuration plus the observed status tally) to
// $MSQL_CHAOS_REPRO_DIR (default ./overload-chaos-repros), which CI
// uploads.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "engine/engine.h"
#include "gtest/gtest.h"
#include "runtime/circuit_breaker.h"
#include "runtime/scheduler.h"
#include "runtime/session.h"

namespace msql {
namespace {

constexpr int kSessions = 4;
constexpr int kQueriesPerSession = 40;
constexpr int64_t kFaultBudget = 8;  // grouped builds that will fail

void SeedSchema(Engine* db) {
  ASSERT_TRUE(db->Execute(
                    "CREATE TABLE Orders (prodName VARCHAR, custName VARCHAR,"
                    " revenue INTEGER)")
                  .ok());
  std::vector<Row> rows;
  const char* prods[] = {"Happy", "Acme", "Whizz"};
  const char* custs[] = {"Alice", "Bob", "Celia"};
  for (int i = 0; i < 300; ++i) {
    rows.push_back({Value::String(prods[i % 3]), Value::String(custs[i % 3]),
                    Value::Int(i % 17)});
  }
  ASSERT_TRUE(db->InsertRows("Orders", std::move(rows)).ok());
  ASSERT_TRUE(db->Execute("CREATE VIEW EO AS SELECT *, SUM(revenue) AS "
                          "MEASURE r FROM Orders")
                  .ok());
}

// Grouped-strategy measure queries: every evaluation crosses the
// grouped-index build checkpoint (unless served from the shared cache).
const char* kWorkload[] = {
    "SELECT prodName, AGGREGATE(r) FROM EO GROUP BY prodName",
    "SELECT custName, r AS v FROM EO GROUP BY custName",
    "SELECT prodName, AGGREGATE(r) / (r AT (ALL)) FROM EO GROUP BY prodName",
    "SELECT COUNT(*) FROM Orders",
};
constexpr int kWorkloadSize = sizeof(kWorkload) / sizeof(kWorkload[0]);

// A bare-measure grouped query always evaluates through the grouped index
// (no row-id fast path), so it reliably crosses the
// measure.grouped_index_build checkpoint when the cache is cold.
const char* kBuildQuery =
    "SELECT prodName, r AS v FROM EO GROUP BY prodName";

bool IsDocumentedTerminal(ErrorCode code) {
  return code == ErrorCode::kOk || code == ErrorCode::kCancelled ||
         code == ErrorCode::kResourceExhausted ||
         code == ErrorCode::kDeadlineExceeded;
}

void WriteReproArtifact(const std::map<std::string, int64_t>& tally,
                        const Engine& db_unused, int64_t opens,
                        int64_t short_circuits, const std::string& note) {
  (void)db_unused;
  const char* env = std::getenv("MSQL_CHAOS_REPRO_DIR");
  std::filesystem::path dir = env != nullptr && *env != '\0'
                                  ? std::filesystem::path(env)
                                  : std::filesystem::path(
                                        "overload-chaos-repros");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::ofstream out(dir / "overload_chaos_repro.json");
  out << "{\n  \"test\": \"OverloadChaosStressTest\",\n"
      << "  \"sessions\": " << kSessions << ",\n"
      << "  \"queries_per_session\": " << kQueriesPerSession << ",\n"
      << "  \"fault_site\": \"measure.grouped_index_build\",\n"
      << "  \"fault_budget\": " << kFaultBudget << ",\n"
      << "  \"breaker_opens\": " << opens << ",\n"
      << "  \"breaker_short_circuits\": " << short_circuits << ",\n"
      << "  \"note\": \"" << note << "\",\n  \"statuses\": {\n";
  bool first = true;
  for (const auto& [label, count] : tally) {
    if (!first) out << ",\n";
    first = false;
    out << "    \"" << label << "\": " << count;
  }
  out << "\n  }\n}\n";
}

TEST(OverloadChaosStressTest, SurvivesOverloadWithGroupedBuildFaults) {
  auto& fi = FaultInjector::Instance();
  fi.Reset();

  EngineOptions eopts;
  eopts.measure_strategy = MeasureStrategy::kGrouped;
  eopts.breaker_window = 8;
  eopts.breaker_failure_ratio = 0.5;
  eopts.breaker_min_samples = 4;
  eopts.breaker_open_cooldown_ms = 20;
  eopts.breaker_half_open_probes = 2;
  Engine db(eopts);
  SeedSchema(&db);

  SchedulerOptions sopts;
  sopts.num_threads = 2;
  sopts.max_pending = 4;           // well under the offered load
  sopts.max_admission_wait_ms = 5; // sheds are part of the scenario
  QueryScheduler scheduler(sopts);

  std::vector<SessionPtr> sessions;
  for (int i = 0; i < kSessions; ++i) sessions.push_back(db.CreateSession());
  // Session 1 runs on a tight budget: its queries may exhaust their
  // deadline while queued or mid-execution.
  sessions[1]->options().timeout_ms = 2;

  // Every grouped-index build fails until the budget is spent: enough
  // consecutive failures to open the breaker (min_samples=4), with spare
  // budget so half-open probes can also fail and re-open it.
  fi.ArmSite("measure.grouped_index_build", kFaultBudget);

  std::mutex tally_mu;
  std::map<std::string, int64_t> tally;
  std::atomic<int64_t> submissions{0};
  std::atomic<int64_t> completions{0};
  std::atomic<bool> bad_code{false};

  auto record = [&](const Status& status) {
    completions.fetch_add(1, std::memory_order_relaxed);
    if (!IsDocumentedTerminal(status.code())) {
      bad_code.store(true, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> lock(tally_mu);
    ++tally[status.ok() ? "ok" : ErrorCodeName(status.code())];
  };

  std::vector<std::thread> submitters;
  for (int s = 0; s < kSessions; ++s) {
    submitters.emplace_back([&, s] {
      SessionPtr session = sessions[s];
      std::vector<QueryScheduler::QueryFuture> futures;
      for (int i = 0; i < kQueriesPerSession; ++i) {
        submissions.fetch_add(1, std::memory_order_relaxed);
        auto f =
            scheduler.Submit(session, kWorkload[(s + i) % kWorkloadSize]);
        if (f.ok()) {
          futures.push_back(f.take());
        } else {
          record(f.status());  // shed at admission still counts
        }
        // Session 2 cancels itself partway through the stream: queued
        // statements must flush with kCancelled, later ones are unaffected.
        if (s == 2 && i == kQueriesPerSession / 2) session->Cancel();
      }
      for (auto& f : futures) record(f.get().status());
    });
  }
  for (auto& t : submitters) t.join();
  scheduler.Drain();  // must return: no deadlock, no stuck completions

  // Conservation: every submission resolved exactly once.
  EXPECT_EQ(completions.load(), submissions.load());
  EXPECT_EQ(completions.load(), kSessions * kQueriesPerSession);
  EXPECT_EQ(scheduler.pending(), 0u);
  for (auto& session : sessions) EXPECT_EQ(session->inflight(), 0);
  EXPECT_FALSE(bad_code.load()) << "an undocumented terminal status escaped";

  // Drain the remaining fault budget serially until the breaker trips: a
  // degraded query publishes its scan-path measure values to the shared
  // cache, so each probe INSERTs first (invalidating the cache) to force a
  // fresh build attempt. While the budget lasts every build fails, so the
  // failures are consecutive and the breaker must open within min_samples
  // attempts of wherever the concurrent phase left off.
  CircuitBreaker& breaker = db.grouped_build_breaker();
  for (int round = 0; round < 20 && breaker.opens() == 0; ++round) {
    ASSERT_TRUE(db.Execute("INSERT INTO Orders VALUES ('Happy','Alice',1)")
                    .ok());
    auto r = db.Query(kBuildQuery);
    ASSERT_TRUE(r.ok()) << r.status().ToString();  // degrades, never fails
  }
  EXPECT_GE(breaker.opens(), 1);
  {
    std::lock_guard<std::mutex> lock(tally_mu);
    EXPECT_GT(tally["ok"], 0);
  }

  // Recovery: clear the fault and drive probe builds until the breaker
  // closes. Each INSERT invalidates the shared cache so every probe query
  // reaches the build checkpoint instead of a cached index.
  fi.Reset();
  bool closed = false;
  for (int round = 0; round < 200 && !closed; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    ASSERT_TRUE(db.Execute("INSERT INTO Orders VALUES ('Happy','Alice',1)")
                    .ok());
    auto r = db.Query(kBuildQuery);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    closed = breaker.state() == CircuitBreaker::State::kClosed;
  }
  EXPECT_TRUE(closed) << "breaker never recovered after the fault cleared";

  // Post-chaos correctness probe against an independent naive engine.
  Engine ref;
  ref.options().measure_strategy = MeasureStrategy::kNaive;
  SeedSchema(&ref);
  ASSERT_TRUE(
      ref.Execute("INSERT INTO Orders VALUES ('Happy','Alice',1)").ok());
  // Mirror the recovery inserts on the reference before comparing.
  auto chaos_count = db.Query("SELECT COUNT(*) FROM Orders");
  auto ref_count = ref.Query("SELECT COUNT(*) FROM Orders");
  ASSERT_TRUE(chaos_count.ok() && ref_count.ok());
  const int64_t extra = chaos_count.value().Get(0, 0).int_val() -
                        ref_count.value().Get(0, 0).int_val();
  for (int64_t i = 0; i < extra; ++i) {
    ASSERT_TRUE(
        ref.Execute("INSERT INTO Orders VALUES ('Happy','Alice',1)").ok());
  }
  auto got = db.Query(
      "SELECT prodName, AGGREGATE(r) AS v FROM EO GROUP BY prodName "
      "ORDER BY prodName");
  auto want = ref.Query(
      "SELECT prodName, AGGREGATE(r) AS v FROM EO GROUP BY prodName "
      "ORDER BY prodName");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  EXPECT_EQ(got.value().ToCsv(), want.value().ToCsv());

  if (::testing::Test::HasFailure()) {
    WriteReproArtifact(tally, db, breaker.opens(), breaker.short_circuits(),
                       closed ? "breaker recovered" : "breaker stuck");
  }
  fi.Reset();
}

// A second, shorter scenario: sustained overload with no faults at all
// must shed cleanly (kResourceExhausted / kDeadlineExceeded only, plus
// successes) and leave the breaker closed — overload alone is not a
// breaker event.
TEST(OverloadChaosStressTest, PureOverloadShedsCleanlyWithoutTrippingBreaker) {
  FaultInjector::Instance().Reset();
  EngineOptions eopts;
  eopts.measure_strategy = MeasureStrategy::kGrouped;
  Engine db(eopts);
  SeedSchema(&db);
  SchedulerOptions sopts;
  sopts.num_threads = 2;
  sopts.max_pending = 2;
  sopts.max_admission_wait_ms = 1;
  QueryScheduler scheduler(sopts);
  SessionPtr session = db.CreateSession();

  int64_t ok = 0, shed = 0, other = 0;
  std::vector<QueryScheduler::QueryFuture> futures;
  for (int i = 0; i < 200; ++i) {
    auto f = scheduler.Submit(session, kWorkload[i % kWorkloadSize]);
    if (f.ok()) {
      futures.push_back(f.take());
    } else if (f.status().code() == ErrorCode::kResourceExhausted) {
      ++shed;
    } else {
      ++other;
    }
  }
  for (auto& f : futures) {
    auto r = f.get();
    if (r.ok()) {
      ++ok;
    } else {
      ++other;
    }
  }
  scheduler.Drain();
  EXPECT_GT(ok, 0);
  EXPECT_EQ(other, 0);
  EXPECT_EQ(ok + shed, 200);  // conservation: every submission accounted for
  EXPECT_EQ(db.grouped_build_breaker().state(),
            CircuitBreaker::State::kClosed);
  EXPECT_EQ(db.grouped_build_breaker().opens(), 0);
}

}  // namespace
}  // namespace msql

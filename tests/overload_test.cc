// Overload resilience (docs/ROBUSTNESS.md, docs/CONCURRENCY.md): token-
// bucket rate limiting, the circuit breaker state machine, retry backoff,
// bounded-wait admission with deadline propagation, cancellation reaching
// queued-but-unstarted work, and the observability surface of all of it
// (metrics, trace spans, EXPLAIN ANALYZE outcome lines).

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"
#include "gtest/gtest.h"
#include "obs/trace.h"
#include "runtime/circuit_breaker.h"
#include "runtime/rate_limiter.h"
#include "runtime/retry.h"
#include "runtime/scheduler.h"
#include "runtime/session.h"

namespace msql {
namespace {

// Loads `n` rows of (k INTEGER, v INTEGER) into table T.
void LoadInts(Engine* db, int n, int distinct_keys) {
  ASSERT_TRUE(db->Execute("CREATE TABLE T (k INTEGER, v INTEGER)").ok());
  std::vector<Row> rows;
  rows.reserve(n);
  for (int i = 0; i < n; ++i) {
    rows.push_back({Value::Int(i % distinct_keys), Value::Int(i)});
  }
  ASSERT_TRUE(db->InsertRows("T", std::move(rows)).ok());
}

// A query that takes long enough (hundreds of ms) to hold a worker while
// other submissions queue behind it, but always terminates.
const char* kSlowQuery =
    "SELECT COUNT(*) FROM T a, T b, T c WHERE a.v + b.v + c.v < 0";

// ---------------------------------------------------------------------------
// RateLimiter
// ---------------------------------------------------------------------------

TEST(RateLimiterTest, DisabledLimiterAlwaysAdmits) {
  RateLimiter limiter;  // rate 0 = disabled
  EXPECT_FALSE(limiter.enabled());
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(limiter.TryAcquire(), 0);
}

TEST(RateLimiterTest, AdmitsBurstThenDefers) {
  // 100 qps, burst 4: four immediate tokens, then a defer hint of up to one
  // token interval (10ms).
  RateLimiter limiter(100.0, 4);
  ASSERT_TRUE(limiter.enabled());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(limiter.TryAcquire(), 0) << "burst token " << i;
  }
  const int64_t defer_us = limiter.TryAcquire();
  EXPECT_GT(defer_us, 0);
  EXPECT_LE(defer_us, 10 * 1000);
}

TEST(RateLimiterTest, TokensRefillOverTime) {
  RateLimiter limiter(1000.0, 1);  // one token per millisecond
  EXPECT_EQ(limiter.TryAcquire(), 0);
  EXPECT_GT(limiter.TryAcquire(), 0);  // bucket empty
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(limiter.TryAcquire(), 0);  // refilled
}

// ---------------------------------------------------------------------------
// CircuitBreaker
// ---------------------------------------------------------------------------

CircuitBreaker::Options FastBreaker() {
  CircuitBreaker::Options o;
  o.window = 8;
  o.failure_ratio = 0.5;
  o.min_samples = 4;
  o.open_cooldown_ms = 40;
  o.half_open_probes = 2;
  return o;
}

TEST(CircuitBreakerTest, OpensOnFailureRateAndShortCircuits) {
  CircuitBreaker breaker(FastBreaker());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  // Successes alone never open.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(breaker.Allow());
    breaker.RecordSuccess();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  // min_samples consecutive failures cross the ratio.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(breaker.Allow());
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 1);
  EXPECT_FALSE(breaker.Allow());  // inside the cooldown
  EXPECT_GE(breaker.short_circuits(), 1);
}

TEST(CircuitBreakerTest, HalfOpenProbesCloseAfterRecovery) {
  CircuitBreaker breaker(FastBreaker());
  for (int i = 0; i < 4; ++i) breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  // Cooldown elapsed: the next Allow() is the first half-open probe.
  ASSERT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordSuccess();  // second consecutive success closes
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  // The window was cleared: one more failure must not re-open.
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, ProbeFailureReopens) {
  CircuitBreaker breaker(FastBreaker());
  for (int i = 0; i < 4; ++i) breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordFailure();  // probe hit the still-broken dependency
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 2);
  EXPECT_FALSE(breaker.Allow());  // cooldown restarted
}

TEST(CircuitBreakerTest, HalfOpenAdmitsOnlyProbeBudget) {
  CircuitBreaker::Options o = FastBreaker();
  o.open_cooldown_ms = 1;
  CircuitBreaker breaker(o);
  for (int i = 0; i < 4; ++i) breaker.RecordFailure();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(breaker.Allow());   // probe 1
  EXPECT_TRUE(breaker.Allow());   // probe 2
  EXPECT_FALSE(breaker.Allow());  // probe budget spent
}

TEST(CircuitBreakerTest, EngineWiresBreakerOptionsAndGauges) {
  EngineOptions opts;
  opts.breaker_min_samples = 2;
  opts.breaker_window = 4;
  Engine db(opts);
  EXPECT_EQ(db.grouped_build_breaker().state(),
            CircuitBreaker::State::kClosed);
  EXPECT_EQ(db.cache_fill_breaker().state(), CircuitBreaker::State::kClosed);
  // The state gauges exist from construction and read 0 (closed).
  const std::string text = db.MetricsText();
  EXPECT_NE(text.find("msql_circuit_grouped_build_state"), std::string::npos);
  EXPECT_NE(text.find("msql_circuit_cache_fill_state"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

TEST(RetryTest, BackoffIsDeterministicCappedAndJittered) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 4;
  policy.max_backoff_ms = 32;
  policy.multiplier = 2.0;
  policy.jitter_seed = 7;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const int64_t a = RetryBackoffUs(policy, attempt);
    const int64_t b = RetryBackoffUs(policy, attempt);
    EXPECT_EQ(a, b) << "attempt " << attempt;  // seeded jitter: reproducible
    const int64_t nominal_ms =
        std::min<int64_t>(policy.max_backoff_ms, 4 << attempt);
    EXPECT_GE(a, nominal_ms * 1000 / 2) << "attempt " << attempt;
    EXPECT_LT(a, nominal_ms * 1000) << "attempt " << attempt;
  }
  // Different seeds decorrelate concurrent retriers.
  RetryPolicy other = policy;
  other.jitter_seed = 8;
  EXPECT_NE(RetryBackoffUs(policy, 0), RetryBackoffUs(other, 0));
}

TEST(RetryTest, OnlyResourceExhaustedIsRetryable) {
  EXPECT_TRUE(Status(ErrorCode::kResourceExhausted, "shed").IsRetryable());
  EXPECT_FALSE(Status::Ok().IsRetryable());
  EXPECT_FALSE(Status(ErrorCode::kCancelled, "c").IsRetryable());
  EXPECT_FALSE(Status(ErrorCode::kDeadlineExceeded, "d").IsRetryable());
  EXPECT_FALSE(Status(ErrorCode::kExecution, "e").IsRetryable());
  EXPECT_FALSE(Status(ErrorCode::kCatalog, "t").IsRetryable());
}

// ---------------------------------------------------------------------------
// Bounded-wait admission
// ---------------------------------------------------------------------------

TEST(AdmissionTest, BoundedWaitRidesOutTransientSaturation) {
  Engine db;
  LoadInts(&db, 120, 120);
  SchedulerOptions opts;
  opts.num_threads = 1;
  opts.max_pending = 1;             // the slow query saturates the scheduler
  opts.max_admission_wait_ms = 10 * 1000;
  QueryScheduler scheduler(opts);
  SessionPtr session = db.CreateSession();

  auto slow = scheduler.Submit(session, kSlowQuery);
  ASSERT_TRUE(slow.ok()) << slow.status().ToString();
  // Instant-reject would shed this immediately (max_pending reached);
  // bounded wait holds it until the slow query frees the slot.
  auto fast = scheduler.Submit(session, "SELECT COUNT(*) FROM T");
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  auto fast_result = fast.take().get();
  ASSERT_TRUE(fast_result.ok()) << fast_result.status().ToString();
  EXPECT_EQ(fast_result.value().Get(0, 0).int_val(), 120);
  ASSERT_TRUE(slow.take().get().ok());
  scheduler.Drain();
}

TEST(AdmissionTest, ShedsWithResourceExhaustedWhenWaitExpires) {
  Engine db;
  LoadInts(&db, 10, 10);
  SchedulerOptions opts;
  opts.max_pending = 0;  // no slot will ever free up
  opts.max_admission_wait_ms = 30;
  QueryScheduler scheduler(opts);
  SessionPtr session = db.CreateSession();
  auto f = scheduler.Submit(session, "SELECT COUNT(*) FROM T");
  ASSERT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_NE(f.status().message().find("queue full"), std::string::npos)
      << f.status().ToString();
  EXPECT_TRUE(f.status().IsRetryable());
}

TEST(AdmissionTest, CancelReachesSubmissionWaitingForAdmission) {
  Engine db;
  LoadInts(&db, 10, 10);
  SchedulerOptions opts;
  opts.max_pending = 0;
  opts.max_admission_wait_ms = 10 * 1000;  // would wait 10s without cancel
  QueryScheduler scheduler(opts);
  SessionPtr session = db.CreateSession();
  std::thread canceller([&session] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    session->Cancel();
  });
  const auto t0 = std::chrono::steady_clock::now();
  auto f = scheduler.Submit(session, "SELECT COUNT(*) FROM T");
  canceller.join();
  ASSERT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), ErrorCode::kCancelled);
  // The wait ended at the cancel, not at the 10s budget.
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(5));
}

TEST(AdmissionTest, CancelAllFlushesQueuedButUnstartedWork) {
  Engine db;
  LoadInts(&db, 150, 150);
  SchedulerOptions opts;
  opts.num_threads = 1;  // one worker: later submissions queue behind kSlow
  QueryScheduler scheduler(opts);
  SessionPtr session = db.CreateSession();

  std::vector<QueryScheduler::QueryFuture> futures;
  auto slow = scheduler.Submit(session, kSlowQuery);
  ASSERT_TRUE(slow.ok());
  futures.push_back(slow.take());
  for (int i = 0; i < 4; ++i) {
    auto f = scheduler.Submit(session, "SELECT COUNT(*) FROM T");
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    futures.push_back(f.take());
  }
  db.CancelAll();
  // Every future resolves (no lost completions), each with kCancelled: the
  // running query unwound, the queued ones were flushed without starting.
  for (auto& f : futures) {
    auto r = f.get();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::kCancelled)
        << r.status().ToString();
  }
  scheduler.Drain();
  EXPECT_EQ(scheduler.pending(), 0u);
  EXPECT_EQ(session->inflight(), 0);
  // CancelAll is scoped to the statements that existed when it was called.
  auto again = scheduler.Submit(session, "SELECT COUNT(*) FROM T");
  ASSERT_TRUE(again.ok());
  auto r = again.take().get();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().Get(0, 0).int_val(), 150);
}

// ---------------------------------------------------------------------------
// Deadline propagation
// ---------------------------------------------------------------------------

TEST(DeadlineTest, SubmissionDeadlineCoversExecution) {
  Engine db;
  LoadInts(&db, 2000, 2000);
  QueryScheduler scheduler;
  SessionPtr session = db.CreateSession();
  session->options().timeout_ms = 50;
  auto f = scheduler.Submit(session, kSlowQuery);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  auto r = f.take().get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kDeadlineExceeded);
  EXPECT_NE(r.status().message().find("deadline"), std::string::npos)
      << r.status().ToString();
}

TEST(DeadlineTest, QueueWaitChargesTheDeadlineBudget) {
  Engine db;
  LoadInts(&db, 150, 150);
  SchedulerOptions opts;
  opts.num_threads = 1;
  QueryScheduler scheduler(opts);
  SessionPtr slow_session = db.CreateSession();       // no deadline
  SessionPtr deadlined = db.CreateSession();
  deadlined->options().timeout_ms = 40;  // shorter than the slow query

  auto slow = scheduler.Submit(slow_session, kSlowQuery);
  ASSERT_TRUE(slow.ok());
  // Queues behind the slow query; its 40ms budget burns while waiting, so
  // it must resolve with kDeadlineExceeded — queued or just-started, the
  // same one deadline applies.
  auto f = scheduler.Submit(deadlined, "SELECT COUNT(*) FROM T");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  auto r = f.take().get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kDeadlineExceeded)
      << r.status().ToString();
  ASSERT_TRUE(slow.take().get().ok());
  scheduler.Drain();
}

// ---------------------------------------------------------------------------
// SubmitWithRetry
// ---------------------------------------------------------------------------

TEST(RetryTest, SubmitWithRetryRidesOutShedding) {
  Engine db;
  LoadInts(&db, 150, 150);
  SchedulerOptions opts;
  opts.num_threads = 1;
  opts.max_pending = 1;
  opts.max_admission_wait_ms = 0;  // instant reject: every shed is a retry
  QueryScheduler scheduler(opts);
  SessionPtr session = db.CreateSession();

  auto slow = scheduler.Submit(session, kSlowQuery);
  ASSERT_TRUE(slow.ok()) << slow.status().ToString();
  // The slow query holds the worker for a couple of seconds; give the
  // retry loop ample budget (it exits on the first success, so the bound
  // is never reached in practice).
  RetryPolicy policy;
  policy.max_attempts = 1000;
  policy.initial_backoff_ms = 5;
  policy.max_backoff_ms = 10;
  Result<ResultSet> r =
      scheduler.SubmitWithRetry(session, "SELECT COUNT(*) FROM T", policy);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().Get(0, 0).int_val(), 150);
  ASSERT_TRUE(slow.take().get().ok());
  scheduler.Drain();
  const std::string text = db.MetricsText();
  EXPECT_NE(text.find("msql_retries_total"), std::string::npos);
}

TEST(RetryTest, NonRetryableFailureSurfacesImmediately) {
  Engine db;
  QueryScheduler scheduler;
  SessionPtr session = db.CreateSession();
  RetryPolicy policy;
  policy.max_attempts = 5;
  Result<ResultSet> r =
      scheduler.SubmitWithRetry(session, "SELECT * FROM NoSuchTable", policy);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kCatalog);
}

// ---------------------------------------------------------------------------
// Observability of admission
// ---------------------------------------------------------------------------

TEST(ObsTest, RateLimitShedIsCountedAndLabelled) {
  Engine db;
  LoadInts(&db, 10, 10);
  SchedulerOptions opts;
  opts.global_rate_limit_qps = 1.0;  // next token ~1s away
  opts.global_rate_limit_burst = 1;
  opts.max_admission_wait_ms = 5;    // far less than the token interval
  QueryScheduler scheduler(opts);
  SessionPtr session = db.CreateSession();

  auto first = scheduler.Submit(session, "SELECT COUNT(*) FROM T");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(first.take().get().ok());
  auto second = scheduler.Submit(session, "SELECT COUNT(*) FROM T");
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_NE(second.status().message().find("rate limited"),
            std::string::npos)
      << second.status().ToString();
  const std::string text = db.MetricsText();
  EXPECT_NE(text.find("msql_rate_limited_total"), std::string::npos);
  EXPECT_NE(text.find("msql_admission_wait_seconds"), std::string::npos);
}

TEST(ObsTest, AdmissionWaitAppearsAsTraceSpan) {
  EngineOptions eopts;
  eopts.enable_tracing = true;
  eopts.admission_rate_limit_qps = 100.0;  // 10ms per token
  eopts.admission_rate_limit_burst = 1;
  Engine db(eopts);
  LoadInts(&db, 10, 10);
  QueryScheduler scheduler;
  SessionPtr session = db.CreateSession();  // snapshots the rate limit

  // First submission takes the burst token; the second waits ~10ms in
  // admission, which the trace must record as an admission-wait span.
  for (int i = 0; i < 2; ++i) {
    auto f = scheduler.Submit(session, "SELECT COUNT(*) FROM T");
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    ASSERT_TRUE(f.take().get().ok());
  }
  bool saw_admission_wait = false;
  for (const auto& trace : db.RecentTraces()) {
    for (const auto& child : trace->root().children) {
      if (child->name == "admission-wait" && child->duration_us > 0) {
        saw_admission_wait = true;
      }
    }
  }
  EXPECT_TRUE(saw_admission_wait)
      << "no trace recorded an admission-wait span";
}

TEST(ObsTest, ExplainAnalyzeRendersDeadlineOutcome) {
  Engine db;
  LoadInts(&db, 2000, 2000);
  db.options().timeout_ms = 20;
  auto r = db.Query(std::string("EXPLAIN ANALYZE ") + kSlowQuery);
  // The statement renders: the plan tree plus the execution outcome.
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::string text;
  for (size_t i = 0; i < r.value().num_rows(); ++i) {
    text += r.value().Get(i, 0).str();
    text += "\n";
  }
  EXPECT_NE(text.find("Outcome: deadline_exceeded"), std::string::npos)
      << text;
}

}  // namespace
}  // namespace msql

#ifndef MSQL_TESTS_PAPER_FIXTURE_H_
#define MSQL_TESTS_PAPER_FIXTURE_H_

#include <string>

#include "engine/engine.h"
#include "gtest/gtest.h"

namespace msql {

// Loads the paper's tables 1 and 2 (Customers, Orders) into an engine.
inline void LoadPaperData(Engine* db) {
  Status st = db->Execute(R"sql(
    CREATE TABLE Customers (custName VARCHAR, custAge INTEGER);
    INSERT INTO Customers VALUES
      ('Alice', 23), ('Bob', 41), ('Celia', 17);
    CREATE TABLE Orders (prodName VARCHAR, custName VARCHAR,
                         orderDate DATE, revenue INTEGER, cost INTEGER);
    INSERT INTO Orders VALUES
      ('Happy', 'Alice', DATE '2023-11-28', 6, 4),
      ('Acme',  'Bob',   DATE '2023-11-27', 5, 2),
      ('Happy', 'Alice', DATE '2024-11-28', 7, 4),
      ('Whizz', 'Celia', DATE '2023-11-25', 3, 1),
      ('Happy', 'Bob',   DATE '2022-11-27', 4, 1);
  )sql");
  ASSERT_TRUE(st.ok()) << st.ToString();
}

// Runs a query, failing the test on error.
inline ResultSet MustQuery(Engine* db, const std::string& sql) {
  auto result = db->Query(sql);
  EXPECT_TRUE(result.ok()) << result.status().ToString() << "\n  in: " << sql;
  return result.ok() ? result.take() : ResultSet();
}

// Executes statements, failing the test on error.
inline void MustExecute(Engine* db, const std::string& sql) {
  Status st = db->Execute(sql);
  ASSERT_TRUE(st.ok()) << st.ToString() << "\n  in: " << sql;
}

}  // namespace msql

#endif  // MSQL_TESTS_PAPER_FIXTURE_H_

// Reproduces every listing of "Measures in SQL" (Hyde & Fremlin, SIGMOD
// Companion 2024), including the printed result tables of listings 4 and 8.
// See DESIGN.md section 3 for the experiment index.

#include <cmath>

#include "engine/engine.h"
#include "gtest/gtest.h"
#include "tests/paper_fixture.h"

namespace msql {
namespace {

// Every listing must reproduce under all three measure-evaluation
// strategies (docs/PERFORMANCE.md): the strategy is an optimization axis,
// never a semantic one.
class PaperListingsTest : public ::testing::TestWithParam<MeasureStrategy> {
 protected:
  void SetUp() override {
    db_.options().measure_strategy = GetParam();
    LoadPaperData(&db_);
  }

  // Finds the row whose first column equals `key` (NULL key: pass "NULL").
  static const Row* FindRow(const ResultSet& rs, const std::string& key) {
    for (const Row& r : rs.rows()) {
      if (r[0].ToString() == key) return &r;
    }
    return nullptr;
  }

  Engine db_;
};

// Listing 1: summarizing Orders by product name with an inline formula.
TEST_P(PaperListingsTest, Listing1SummarizeByProduct) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName,
           COUNT(*) AS c,
           (SUM(revenue) - SUM(cost)) / SUM(revenue) AS profitMargin
    FROM Orders
    GROUP BY prodName
    ORDER BY prodName
  )sql");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.Get(0, "prodName").str(), "Acme");
  EXPECT_EQ(rs.Get(0, "c").int_val(), 1);
  EXPECT_NEAR(rs.Get(0, "profitMargin").double_val(), 0.60, 1e-9);
  EXPECT_EQ(rs.Get(1, "prodName").str(), "Happy");
  EXPECT_EQ(rs.Get(1, "c").int_val(), 3);
  EXPECT_NEAR(rs.Get(1, "profitMargin").double_val(), 8.0 / 17.0, 1e-9);
  EXPECT_EQ(rs.Get(2, "prodName").str(), "Whizz");
  EXPECT_NEAR(rs.Get(2, "profitMargin").double_val(), 2.0 / 3.0, 1e-9);
}

// Listing 2: the motivating bug — AVG over a summarizing view weights each
// (prodName, orderDate) combination, not each order, so the result for
// 'Happy' differs from the true margin 8/17.
TEST_P(PaperListingsTest, Listing2AverageOfAveragesIsWrong) {
  MustExecute(&db_, R"sql(
    CREATE VIEW SummarizedOrders AS
    SELECT prodName, orderDate,
           (SUM(revenue) - SUM(cost)) / SUM(revenue) AS profitMargin
    FROM Orders
    GROUP BY prodName, orderDate
  )sql");
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, AVG(profitMargin) AS avgMargin
    FROM SummarizedOrders
    GROUP BY prodName
    ORDER BY prodName
  )sql");
  const Row* happy = FindRow(rs, "Happy");
  ASSERT_NE(happy, nullptr);
  // Average of per-day margins: (2/6 + 3/7 + 3/4) / 3.
  double avg_of_avgs = (2.0 / 6 + 3.0 / 7 + 3.0 / 4) / 3;
  EXPECT_NEAR((*happy)[1].double_val(), avg_of_avgs, 1e-9);
  EXPECT_NE((*happy)[1].double_val(), 8.0 / 17.0);
}

// Listing 3: the EnhancedOrders measure view; AGGREGATE evaluates the
// measure in the context of each group row.
TEST_P(PaperListingsTest, Listing3EnhancedOrdersView) {
  MustExecute(&db_, R"sql(
    CREATE VIEW EnhancedOrders AS
    SELECT orderDate, prodName,
           (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE profitMargin
    FROM Orders
  )sql");
  // The view has no GROUP BY: same number of rows as Orders.
  ResultSet all = MustQuery(&db_, "SELECT orderDate, prodName FROM EnhancedOrders");
  EXPECT_EQ(all.num_rows(), 5u);

  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, AGGREGATE(profitMargin) AS m
    FROM EnhancedOrders
    GROUP BY prodName
    ORDER BY prodName
  )sql");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_NEAR(rs.Get(0, "m").double_val(), 0.60, 1e-9);       // Acme
  EXPECT_NEAR(rs.Get(1, "m").double_val(), 8.0 / 17.0, 1e-9); // Happy
  EXPECT_NEAR(rs.Get(2, "m").double_val(), 2.0 / 3.0, 1e-9);  // Whizz
}

// Listing 4: the paper's printed result table:
//   Acme 0.60 1 / Happy 0.47 3 / Whizz 0.67 1.
TEST_P(PaperListingsTest, Listing4ResultTable) {
  MustExecute(&db_, R"sql(
    CREATE VIEW EnhancedOrders AS
    SELECT orderDate, prodName,
           (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE profitMargin
    FROM Orders
  )sql");
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, AGGREGATE(profitMargin) AS profitMargin, COUNT(*) AS c
    FROM EnhancedOrders
    GROUP BY prodName
    ORDER BY prodName
  )sql");
  ASSERT_EQ(rs.num_rows(), 3u);
  struct Expected {
    const char* prod;
    double margin;
    int64_t count;
  };
  const Expected expected[] = {
      {"Acme", 0.60, 1}, {"Happy", 8.0 / 17.0, 3}, {"Whizz", 2.0 / 3.0, 1}};
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(rs.Get(i, "prodName").str(), expected[i].prod);
    EXPECT_NEAR(rs.Get(i, "profitMargin").double_val(), expected[i].margin,
                0.005);
    EXPECT_EQ(rs.Get(i, "c").int_val(), expected[i].count);
  }
}

// Listing 5: the manually expanded query (correlated scalar subquery) gives
// the same answer as the measure query.
TEST_P(PaperListingsTest, Listing5ManualExpansionMatches) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName,
           (SELECT (SUM(i.revenue) - SUM(i.cost)) / SUM(i.revenue)
            FROM Orders AS i
            WHERE i.prodName = o.prodName) AS profitMargin,
           COUNT(*) AS c
    FROM Orders AS o
    GROUP BY prodName
    ORDER BY prodName
  )sql");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_NEAR(rs.Get(0, "profitMargin").double_val(), 0.60, 1e-9);
  EXPECT_NEAR(rs.Get(1, "profitMargin").double_val(), 8.0 / 17.0, 1e-9);
  EXPECT_NEAR(rs.Get(2, "profitMargin").double_val(), 2.0 / 3.0, 1e-9);
  EXPECT_EQ(rs.Get(1, "c").int_val(), 3);
}

// Listing 6: proportion of total revenue via AT (ALL prodName).
TEST_P(PaperListingsTest, Listing6ProportionOfTotal) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, sumRevenue,
           sumRevenue / sumRevenue AT (ALL prodName)
             AS proportionOfTotalRevenue
    FROM (
      SELECT *, SUM(revenue) AS MEASURE sumRevenue
      FROM Orders) AS o
    GROUP BY prodName
    ORDER BY prodName
  )sql");
  ASSERT_EQ(rs.num_rows(), 3u);
  // Totals: Acme 5, Happy 17, Whizz 3; grand total 25.
  EXPECT_EQ(rs.Get(0, "sumRevenue").int_val(), 5);
  EXPECT_NEAR(rs.Get(0, "proportionOfTotalRevenue").double_val(), 5.0 / 25,
              1e-9);
  EXPECT_EQ(rs.Get(1, "sumRevenue").int_val(), 17);
  EXPECT_NEAR(rs.Get(1, "proportionOfTotalRevenue").double_val(), 17.0 / 25,
              1e-9);
  EXPECT_EQ(rs.Get(2, "sumRevenue").int_val(), 3);
  EXPECT_NEAR(rs.Get(2, "proportionOfTotalRevenue").double_val(), 3.0 / 25,
              1e-9);
}

// Listing 7: year-over-year profit margin via SET / CURRENT; the 2023 margin
// is computed over rows removed by the WHERE clause.
TEST_P(PaperListingsTest, Listing7YearOverYear) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, orderYear,
           profitMargin,
           profitMargin AT (SET orderYear = CURRENT orderYear - 1)
             AS profitMarginLastYear
    FROM (
      SELECT *,
             (SUM(revenue) - SUM(cost)) / SUM(revenue)
               AS MEASURE profitMargin,
             YEAR(orderDate) AS orderYear
      FROM Orders
    )
    WHERE orderYear = 2024
    GROUP BY prodName, orderYear
  )sql");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.Get(0, "prodName").str(), "Happy");
  EXPECT_EQ(rs.Get(0, "orderYear").int_val(), 2024);
  // 2024: Happy revenue 7, cost 4 -> 3/7.
  EXPECT_NEAR(rs.Get(0, "profitMargin").double_val(), 3.0 / 7, 1e-9);
  // 2023: Happy revenue 6, cost 4 -> 2/6 (rows excluded by WHERE).
  EXPECT_NEAR(rs.Get(0, "profitMarginLastYear").double_val(), 2.0 / 6, 1e-9);
}

// Listing 8: the printed VISIBLE/ROLLUP result table:
//   Happy 2 13 13 17 / Whizz 1 3 3 3 / (total) 3 16 16 25.
TEST_P(PaperListingsTest, Listing8VisibleTotals) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT o.prodName,
           COUNT(*) AS c,
           AGGREGATE(o.sumRevenue) AS rAgg,
           o.sumRevenue AT (VISIBLE) AS rViz,
           o.sumRevenue AS r
    FROM (SELECT *, SUM(revenue) AS MEASURE sumRevenue
          FROM Orders) AS o
    WHERE o.custName <> 'Bob'
    GROUP BY ROLLUP(o.prodName)
  )sql");
  ASSERT_EQ(rs.num_rows(), 3u);
  const Row* happy = FindRow(rs, "Happy");
  ASSERT_NE(happy, nullptr);
  EXPECT_EQ((*happy)[1].int_val(), 2);   // c
  EXPECT_EQ((*happy)[2].int_val(), 13);  // rAgg
  EXPECT_EQ((*happy)[3].int_val(), 13);  // rViz
  EXPECT_EQ((*happy)[4].int_val(), 17);  // r (ignores WHERE)
  const Row* whizz = FindRow(rs, "Whizz");
  ASSERT_NE(whizz, nullptr);
  EXPECT_EQ((*whizz)[1].int_val(), 1);
  EXPECT_EQ((*whizz)[2].int_val(), 3);
  EXPECT_EQ((*whizz)[3].int_val(), 3);
  EXPECT_EQ((*whizz)[4].int_val(), 3);
  const Row* total = FindRow(rs, "NULL");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ((*total)[1].int_val(), 3);
  EXPECT_EQ((*total)[2].int_val(), 16);
  EXPECT_EQ((*total)[3].int_val(), 16);
  EXPECT_EQ((*total)[4].int_val(), 25);
}

// Listing 9: joins — the weighted average uses joined rows; the bare measure
// ignores join and filter; VISIBLE preserves the customer grain (each
// customer counted once regardless of order fan-out).
TEST_P(PaperListingsTest, Listing9JoinGrainPreservation) {
  ResultSet rs = MustQuery(&db_, R"sql(
    WITH EnhancedCustomers AS (
      SELECT *, AVG(custAge) AS MEASURE avgAge
      FROM Customers)
    SELECT o.prodName,
           COUNT(*) AS orderCount,
           AVG(c.custAge) AS weightedAvgAge,
           c.avgAge AS avgAge,
           c.avgAge AT (VISIBLE) AS visibleAvgAge
    FROM Orders AS o
    JOIN EnhancedCustomers AS c USING (custName)
    WHERE c.custAge >= 18
    GROUP BY o.prodName
    ORDER BY o.prodName
  )sql");
  // Whizz (Celia, 17) is filtered out entirely.
  ASSERT_EQ(rs.num_rows(), 2u);
  const Row* happy = FindRow(rs, "Happy");
  ASSERT_NE(happy, nullptr);
  EXPECT_EQ(rs.Get(1, "prodName").str(), "Happy");
  EXPECT_EQ((*happy)[1].int_val(), 3);  // Alice x2 + Bob x1
  // Weighted: (23 + 23 + 41) / 3 = 29.
  EXPECT_NEAR((*happy)[2].double_val(), 29.0, 1e-9);
  // Bare measure: group key prodName is not a Customers dimension, and the
  // default context ignores WHERE/join -> average over ALL customers.
  EXPECT_NEAR((*happy)[3].double_val(), (23 + 41 + 17) / 3.0, 1e-9);
  // VISIBLE: customers reachable in this group, each once: Alice, Bob.
  EXPECT_NEAR((*happy)[4].double_val(), (23 + 41) / 2.0, 1e-9);

  const Row* acme = FindRow(rs, "Acme");
  ASSERT_NE(acme, nullptr);
  EXPECT_EQ((*acme)[1].int_val(), 1);
  EXPECT_NEAR((*acme)[2].double_val(), 41.0, 1e-9);
  EXPECT_NEAR((*acme)[4].double_val(), 41.0, 1e-9);
}

// Listing 10: year-over-year ratio through a view.
TEST_P(PaperListingsTest, Listing10YearOverYearRatio) {
  MustExecute(&db_, R"sql(
    CREATE VIEW OrdersWithRevenue AS
    SELECT *, SUM(revenue) AS MEASURE sumRevenue
    FROM Orders
  )sql");
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, YEAR(orderDate) AS orderYear,
           sumRevenue / sumRevenue AT
             (SET orderYear = CURRENT orderYear - 1) AS ratio
    FROM OrdersWithRevenue
    GROUP BY prodName, YEAR(orderDate)
    ORDER BY prodName, orderYear
  )sql");
  // Groups: Acme/2023, Happy/2022, Happy/2023, Happy/2024, Whizz/2023.
  ASSERT_EQ(rs.num_rows(), 5u);
  // NOTE: `SET orderYear = ...` refers to the alias of YEAR(orderDate); the
  // only well-defined ratios are Happy 2023/2022 = 6/4 and 2024/2023 = 7/6.
  int checked = 0;
  for (const Row& r : rs.rows()) {
    if (r[0].str() == "Happy" && r[1].int_val() == 2023) {
      EXPECT_NEAR(r[2].double_val(), 6.0 / 4, 1e-9);
      ++checked;
    }
    if (r[0].str() == "Happy" && r[1].int_val() == 2024) {
      EXPECT_NEAR(r[2].double_val(), 7.0 / 6, 1e-9);
      ++checked;
    }
  }
  EXPECT_EQ(checked, 2);
}

// Listing 11: the expansion with the auxiliary computeSumRevenue function —
// expressed here as the equivalent correlated-subquery SQL.
TEST_P(PaperListingsTest, Listing11ExpandedFormMatchesMeasures) {
  ResultSet expanded = MustQuery(&db_, R"sql(
    SELECT o.prodName, YEAR(o.orderDate) AS orderYear,
           (SELECT SUM(r.revenue) FROM Orders AS r
            WHERE r.prodName = o.prodName
              AND YEAR(r.orderDate) = YEAR(o.orderDate))
           /
           (SELECT SUM(r.revenue) FROM Orders AS r
            WHERE r.prodName = o.prodName
              AND YEAR(r.orderDate) = YEAR(o.orderDate) - 1) AS ratio
    FROM Orders AS o
    GROUP BY prodName, YEAR(orderDate)
    ORDER BY prodName, orderYear
  )sql");
  MustExecute(&db_, R"sql(
    CREATE VIEW OrdersWithRevenue AS
    SELECT *, SUM(revenue) AS MEASURE sumRevenue FROM Orders
  )sql");
  ResultSet measured = MustQuery(&db_, R"sql(
    SELECT prodName, YEAR(orderDate) AS orderYear,
           sumRevenue / sumRevenue AT
             (SET orderYear = CURRENT orderYear - 1) AS ratio
    FROM (SELECT *, YEAR(orderDate) AS orderYear FROM OrdersWithRevenue)
    GROUP BY prodName, YEAR(orderDate)
    ORDER BY prodName, orderYear
  )sql");
  ASSERT_EQ(expanded.num_rows(), measured.num_rows());
  for (size_t i = 0; i < expanded.num_rows(); ++i) {
    EXPECT_EQ(expanded.Get(i, 0).ToString(), measured.Get(i, 0).ToString());
    EXPECT_EQ(expanded.Get(i, 1).ToString(), measured.Get(i, 1).ToString());
    if (expanded.Get(i, 2).is_null()) {
      EXPECT_TRUE(measured.Get(i, 2).is_null());
    } else {
      EXPECT_NEAR(expanded.Get(i, 2).double_val(),
                  measured.Get(i, 2).double_val(), 1e-9);
    }
  }
}

// Listing 12: four equivalent formulations of "orders with revenue above the
// product average" return identical row sets.
TEST_P(PaperListingsTest, Listing12FourEquivalentQueries) {
  const char* q1 = R"sql(
    SELECT o.prodName, o.orderDate
    FROM Orders AS o
    WHERE o.revenue >
      (SELECT AVG(revenue) FROM Orders AS o1
       WHERE o1.prodName = o.prodName)
    ORDER BY prodName, orderDate
  )sql";
  const char* q2 = R"sql(
    SELECT o.prodName, o.orderDate
    FROM Orders AS o
    LEFT JOIN
      (SELECT prodName, AVG(revenue) AS avgRevenue
       FROM Orders
       GROUP BY prodName) AS o2
    ON o.prodName = o2.prodName
    WHERE o.revenue > o2.avgRevenue
    ORDER BY prodName, orderDate
  )sql";
  const char* q3 = R"sql(
    SELECT o.prodName, o.orderDate
    FROM
      (SELECT prodName, revenue, orderDate,
              AVG(revenue) OVER (PARTITION BY prodName) AS avgRevenue
       FROM Orders) AS o
    WHERE o.revenue > o.avgRevenue
    ORDER BY prodName, orderDate
  )sql";
  const char* q4 = R"sql(
    SELECT o.prodName, o.orderDate
    FROM
      (SELECT prodName, orderDate, revenue,
              AVG(revenue) AS MEASURE avgRevenue
       FROM Orders) AS o
    WHERE o.revenue >
      o.avgRevenue AT (WHERE prodName = o.prodName)
    ORDER BY prodName, orderDate
  )sql";

  ResultSet r1 = MustQuery(&db_, q1);
  ResultSet r2 = MustQuery(&db_, q2);
  ResultSet r3 = MustQuery(&db_, q3);
  ResultSet r4 = MustQuery(&db_, q4);

  ASSERT_GT(r1.num_rows(), 0u);
  for (const ResultSet* other : {&r2, &r3, &r4}) {
    ASSERT_EQ(r1.num_rows(), other->num_rows());
    for (size_t i = 0; i < r1.num_rows(); ++i) {
      EXPECT_EQ(r1.Get(i, 0).ToString(), other->Get(i, 0).ToString());
      EXPECT_EQ(r1.Get(i, 1).ToString(), other->Get(i, 1).ToString());
    }
  }
  // Happy's average revenue is 17/3 = 5.67, so the 2023 (6) and 2024 (7)
  // orders qualify; Acme and Whizz single orders equal their own average.
  ASSERT_EQ(r1.num_rows(), 2u);
  EXPECT_EQ(r1.Get(0, 0).str(), "Happy");
  EXPECT_EQ(r1.Get(0, 1).ToString(), "2023-11-28");
  EXPECT_EQ(r1.Get(1, 0).str(), "Happy");
  EXPECT_EQ(r1.Get(1, 1).ToString(), "2024-11-28");
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, PaperListingsTest,
    ::testing::Values(MeasureStrategy::kNaive, MeasureStrategy::kMemoized,
                      MeasureStrategy::kGrouped),
    [](const ::testing::TestParamInfo<MeasureStrategy>& info) {
      switch (info.param) {
        case MeasureStrategy::kNaive: return "Naive";
        case MeasureStrategy::kMemoized: return "Memoized";
        case MeasureStrategy::kGrouped: return "Grouped";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace msql

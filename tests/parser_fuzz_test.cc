// Fuzz-style robustness tests for the front end: random token soups,
// truncations of valid queries, and deep nesting must always produce a
// Status (parse or bind error) or a result — never a crash or a hang.

#include <cstdlib>
#include <random>

#include "engine/engine.h"
#include "gtest/gtest.h"
#include "parser/parser.h"
#include "parser/unparser.h"
#include "testing/generator.h"
#include "tests/paper_fixture.h"

namespace msql {
namespace {

// Fixed, deterministic iteration budget so ctest/CI runs are comparable;
// MSQL_FUZZ_ITERS overrides it for longer local fuzzing sessions.
int IterBudget(int default_iters) {
  if (const char* env = std::getenv("MSQL_FUZZ_ITERS")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return default_iters;
}

const char* kFragments[] = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "HAVING", "AS",
    "MEASURE", "AT", "(", ")", ",", "ALL", "SET", "VISIBLE", "CURRENT",
    "AGGREGATE", "SUM", "COUNT", "*", "+", "-", "/", "=", "<", "prodName",
    "revenue", "Orders", "EO", "r", "1", "2.5", "'x'", "AND", "OR", "NOT",
    "NULL", "JOIN", "ON", "USING", "ROLLUP", "CASE", "WHEN", "THEN", "END",
    "IN", "BETWEEN", "LIKE", "IS", "DISTINCT", "UNION", "WITH", ".", ";",
    "DATE", "'2024-01-01'", "CAST", "INTEGER", "OVER", "PARTITION",
};

class ParserFuzzTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<size_t> pick(0, std::size(kFragments) - 1);
  std::uniform_int_distribution<int> len(1, 40);
  const int iters = IterBudget(500);
  for (int q = 0; q < iters; ++q) {
    std::string sql;
    int n = len(rng);
    for (int i = 0; i < n; ++i) {
      sql += kFragments[pick(rng)];
      sql += " ";
    }
    auto r = Parser::Parse(sql);
    (void)r;  // error or success; must not crash
  }
  SUCCEED();
}

TEST_P(ParserFuzzTest, RandomSoupThroughTheFullEngine) {
  Engine db;
  LoadPaperData(&db);
  MustExecute(&db,
              "CREATE VIEW EO AS SELECT *, SUM(revenue) AS MEASURE r "
              "FROM Orders");
  std::mt19937 rng(GetParam() * 7919 + 13);
  std::uniform_int_distribution<size_t> pick(0, std::size(kFragments) - 1);
  std::uniform_int_distribution<int> len(1, 30);
  const int iters = IterBudget(200);
  for (int q = 0; q < iters; ++q) {
    std::string sql = "SELECT ";
    int n = len(rng);
    for (int i = 0; i < n; ++i) {
      sql += kFragments[pick(rng)];
      sql += " ";
    }
    auto r = db.Query(sql);
    (void)r;  // bind/parse/exec errors are all fine; crashes are not
  }
  SUCCEED();
}

TEST_P(ParserFuzzTest, TruncationsOfValidQueries) {
  const char* queries[] = {
      "SELECT prodName, AGGREGATE(r) AS v FROM EO WHERE custName <> 'Bob' "
      "GROUP BY ROLLUP(prodName) HAVING AGGREGATE(r) > 1 ORDER BY v DESC "
      "LIMIT 3",
      "SELECT o.prodName, r AT (SET orderYear = CURRENT orderYear - 1 "
      "ALL custName VISIBLE WHERE revenue > 2) FROM EO AS o GROUP BY "
      "o.prodName, orderYear",
      "WITH x AS (SELECT *, SUM(cost) AS MEASURE c FROM Orders) SELECT "
      "prodName, AGGREGATE(c) FROM x GROUP BY prodName",
  };
  Engine db;
  LoadPaperData(&db);
  MustExecute(&db, "CREATE VIEW EO AS SELECT *, SUM(revenue) AS MEASURE r, "
                   "YEAR(orderDate) AS orderYear FROM Orders");
  for (const char* q : queries) {
    std::string full = q;
    for (size_t cut = 1; cut < full.size(); cut += 3) {
      auto r = db.Query(full.substr(0, cut));
      (void)r;
    }
  }
  SUCCEED();
}

TEST_P(ParserFuzzTest, DeepNestingIsBounded) {
  // Deep parenthesized expressions and subqueries must terminate promptly
  // (error or success), not blow the stack.
  std::string expr = "1";
  for (int i = 0; i < 200; ++i) expr = "(" + expr + " + 1)";
  auto r = Parser::Parse("SELECT " + expr);
  EXPECT_TRUE(r.ok());

  std::string at = "r";
  for (int i = 0; i < 100; ++i) at += " AT (ALL)";
  Engine db;
  LoadPaperData(&db);
  MustExecute(&db, "CREATE VIEW EO AS SELECT *, SUM(revenue) AS MEASURE r "
                   "FROM Orders");
  auto deep = db.Query("SELECT " + at + " FROM EO GROUP BY prodName");
  // 100 chained ATs are legal and all collapse to ALL.
  EXPECT_TRUE(deep.ok()) << deep.status().ToString();
}

// The contract the shrinker depends on (src/parser/unparser.h): unparsing
// a parsed statement and re-parsing the text yields a structurally
// identical AST. Checked over the msqlcheck generator's query stream —
// the exact statement population the shrinker mutates — plus every
// generated setup statement (DDL, INSERT, CREATE VIEW ... MEASURE).
TEST_P(ParserFuzzTest, UnparseReparseRoundTripsGeneratedStatements) {
  const int seeds = IterBudget(40);
  int statements = 0;
  for (int s = 0; s < seeds; ++s) {
    uint64_t seed = GetParam() * 1000u + static_cast<uint64_t>(s);
    testing::CaseSpec spec = testing::GenerateCase(seed);
    std::vector<std::string> all = spec.SetupStatements();
    for (const auto& check : spec.checks) {
      all.insert(all.end(), check.queries.begin(), check.queries.end());
    }
    for (const std::string& sql : all) {
      auto first = Parser::Parse(sql);
      ASSERT_TRUE(first.ok()) << sql << "\n" << first.status().ToString();
      std::string rendered = Unparse(*first.value());
      auto second = Parser::Parse(rendered);
      ASSERT_TRUE(second.ok())
          << "unparse produced unparseable text\n  original: " << sql
          << "\n  rendered: " << rendered << "\n"
          << second.status().ToString();
      EXPECT_TRUE(StmtEquals(*first.value(), *second.value()))
          << "round-trip changed the AST\n  original: " << sql
          << "\n  rendered: " << rendered;
      // And the rendering is a fixpoint: unparsing the reparsed AST gives
      // the same text.
      EXPECT_EQ(rendered, Unparse(*second.value()));
      ++statements;
    }
  }
  EXPECT_GT(statements, 100);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace msql

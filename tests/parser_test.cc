// Unit tests for the recursive-descent parser: statement shapes, operator
// precedence, the paper's AT / AS MEASURE / CURRENT extensions, and error
// reporting. Round trips rely on Expr/Stmt::ToString.

#include "parser/parser.h"

#include "gtest/gtest.h"

namespace msql {
namespace {

StmtPtr MustParse(const std::string& sql) {
  auto r = Parser::Parse(sql);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << "\n  in: " << sql;
  return r.ok() ? r.take() : nullptr;
}

std::string ExprString(const std::string& expr_sql) {
  auto r = Parser::ParseExpression(expr_sql);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << "\n  in: " << expr_sql;
  return r.ok() ? r.value()->ToString() : "";
}

TEST(ParserTest, SimpleSelect) {
  StmtPtr stmt = MustParse("SELECT a, b FROM t WHERE a > 1");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->kind, StmtKind::kSelect);
  EXPECT_EQ(stmt->select->select_list.size(), 2u);
  EXPECT_NE(stmt->select->where, nullptr);
}

TEST(ParserTest, Precedence) {
  EXPECT_EQ(ExprString("1 + 2 * 3"), "(1 + (2 * 3))");
  EXPECT_EQ(ExprString("(1 + 2) * 3"), "((1 + 2) * 3)");
  EXPECT_EQ(ExprString("a OR b AND c"), "(a OR (b AND c))");
  EXPECT_EQ(ExprString("NOT a = b"), "(NOT (a = b))");
  EXPECT_EQ(ExprString("-a + b"), "((-a) + b)");
  EXPECT_EQ(ExprString("a = b AND c < d"), "((a = b) AND (c < d))");
}

TEST(ParserTest, AtBindsTighterThanDivision) {
  // Paper listing 6 relies on this.
  std::string s = ExprString("sumRevenue / sumRevenue AT (ALL prodName)");
  EXPECT_EQ(s, "(sumRevenue / sumRevenue AT (ALL prodName))");
}

TEST(ParserTest, AtModifierKinds) {
  auto r = Parser::ParseExpression(
      "m AT (ALL VISIBLE SET y = CURRENT y - 1 WHERE a = b ALL x, z)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Expr& e = *r.value();
  ASSERT_EQ(e.kind, ExprKind::kAt);
  ASSERT_EQ(e.at_modifiers.size(), 5u);
  EXPECT_EQ(e.at_modifiers[0].kind, AtModifier::Kind::kAll);
  EXPECT_EQ(e.at_modifiers[1].kind, AtModifier::Kind::kVisible);
  EXPECT_EQ(e.at_modifiers[2].kind, AtModifier::Kind::kSet);
  EXPECT_EQ(e.at_modifiers[3].kind, AtModifier::Kind::kWhere);
  EXPECT_EQ(e.at_modifiers[4].kind, AtModifier::Kind::kAllDims);
  EXPECT_EQ(e.at_modifiers[4].dims.size(), 2u);
}

TEST(ParserTest, AtSetWithCurrentExpression) {
  std::string s =
      ExprString("profitMargin AT (SET orderYear = CURRENT orderYear - 1)");
  EXPECT_EQ(s,
            "profitMargin AT (SET orderYear = (CURRENT orderYear - 1))");
}

TEST(ParserTest, ChainedAt) {
  auto r = Parser::ParseExpression("m AT (ALL) AT (VISIBLE)");
  ASSERT_TRUE(r.ok());
  const Expr& outer = *r.value();
  EXPECT_EQ(outer.kind, ExprKind::kAt);
  EXPECT_EQ(outer.left->kind, ExprKind::kAt);
}

TEST(ParserTest, AsMeasure) {
  StmtPtr stmt = MustParse(
      "SELECT *, SUM(revenue) AS MEASURE sumRevenue FROM Orders");
  ASSERT_NE(stmt, nullptr);
  const auto& items = stmt->select->select_list;
  ASSERT_EQ(items.size(), 2u);
  EXPECT_TRUE(items[0].is_star);
  EXPECT_TRUE(items[1].is_measure);
  EXPECT_EQ(items[1].alias, "sumRevenue");
}

TEST(ParserTest, CreateView) {
  StmtPtr stmt = MustParse(
      "CREATE OR REPLACE VIEW v AS SELECT a FROM t");
  EXPECT_EQ(stmt->kind, StmtKind::kCreateView);
  EXPECT_TRUE(stmt->or_replace);
  EXPECT_EQ(stmt->name, "v");
}

TEST(ParserTest, CreateTableAndDrop) {
  StmtPtr stmt = MustParse(
      "CREATE TABLE IF NOT EXISTS t (a INTEGER, b VARCHAR(20), c DATE)");
  EXPECT_EQ(stmt->kind, StmtKind::kCreateTable);
  EXPECT_TRUE(stmt->if_not_exists);
  ASSERT_EQ(stmt->columns.size(), 3u);
  EXPECT_EQ(stmt->columns[2].type_name, "DATE");

  StmtPtr drop = MustParse("DROP TABLE IF EXISTS t");
  EXPECT_EQ(drop->kind, StmtKind::kDrop);
  EXPECT_TRUE(drop->if_exists);
}

TEST(ParserTest, Insert) {
  StmtPtr stmt = MustParse(
      "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)");
  EXPECT_EQ(stmt->kind, StmtKind::kInsert);
  EXPECT_EQ(stmt->insert_columns.size(), 2u);
  EXPECT_EQ(stmt->insert_rows.size(), 2u);

  StmtPtr sel = MustParse("INSERT INTO t SELECT * FROM s");
  EXPECT_NE(sel->insert_select, nullptr);
}

TEST(ParserTest, JoinVariants) {
  StmtPtr stmt = MustParse(
      "SELECT * FROM a JOIN b ON a.x = b.x "
      "LEFT JOIN c USING (y) CROSS JOIN d");
  const TableRef* from = stmt->select->from.get();
  ASSERT_EQ(from->kind, TableRefKind::kJoin);
  EXPECT_EQ(from->join_type, JoinType::kCross);
  EXPECT_EQ(from->left->join_type, JoinType::kLeft);
  EXPECT_EQ(from->left->using_cols.size(), 1u);
}

TEST(ParserTest, GroupByRollupAndGroupingSets) {
  StmtPtr stmt = MustParse(
      "SELECT a, b, COUNT(*) FROM t "
      "GROUP BY ROLLUP(a, b)");
  ASSERT_EQ(stmt->select->group_by.size(), 1u);
  EXPECT_EQ(stmt->select->group_by[0].kind, GroupItem::Kind::kRollup);
  EXPECT_EQ(stmt->select->group_by[0].exprs.size(), 2u);

  StmtPtr gs = MustParse(
      "SELECT a, b FROM t GROUP BY GROUPING SETS ((a), (a, b), ())");
  EXPECT_EQ(gs->select->group_by[0].kind, GroupItem::Kind::kGroupingSets);
  EXPECT_EQ(gs->select->group_by[0].sets.size(), 3u);

  StmtPtr cube = MustParse("SELECT a FROM t GROUP BY CUBE(a, b)");
  EXPECT_EQ(cube->select->group_by[0].kind, GroupItem::Kind::kCube);
}

TEST(ParserTest, WithClause) {
  StmtPtr stmt = MustParse(
      "WITH x AS (SELECT 1 AS a), y AS (SELECT a FROM x) "
      "SELECT * FROM y");
  EXPECT_EQ(stmt->select->ctes.size(), 2u);
}

TEST(ParserTest, SetOperations) {
  StmtPtr stmt = MustParse("SELECT a FROM t UNION ALL SELECT b FROM s");
  EXPECT_EQ(stmt->select->set_op, SetOpKind::kUnionAll);
  StmtPtr u = MustParse("SELECT a FROM t UNION SELECT b FROM s");
  EXPECT_EQ(u->select->set_op, SetOpKind::kUnion);
  StmtPtr e = MustParse("SELECT a FROM t EXCEPT SELECT b FROM s");
  EXPECT_EQ(e->select->set_op, SetOpKind::kExcept);
}

TEST(ParserTest, WindowFunctions) {
  StmtPtr stmt = MustParse(
      "SELECT AVG(x) OVER (PARTITION BY p ORDER BY d DESC) FROM t");
  const Expr& e = *stmt->select->select_list[0].expr;
  ASSERT_NE(e.over, nullptr);
  EXPECT_EQ(e.over->partition_by.size(), 1u);
  ASSERT_EQ(e.over->order_by.size(), 1u);
  EXPECT_TRUE(e.over->order_by[0].second);
}

TEST(ParserTest, CaseCastBetweenInLike) {
  EXPECT_EQ(ExprString("CASE WHEN a THEN 1 ELSE 2 END"),
            "CASE WHEN a THEN 1 ELSE 2 END");
  EXPECT_EQ(ExprString("CAST(a AS INTEGER)"), "CAST(a AS INTEGER)");
  EXPECT_EQ(ExprString("a BETWEEN 1 AND 3"), "(a BETWEEN 1 AND 3)");
  EXPECT_EQ(ExprString("a NOT BETWEEN 1 AND 3"), "(a NOT BETWEEN 1 AND 3)");
  EXPECT_EQ(ExprString("a IN (1, 2)"), "(a IN (1, 2))");
  EXPECT_EQ(ExprString("a NOT IN (1)"), "(a NOT IN (1))");
  EXPECT_EQ(ExprString("a LIKE 'x%'"), "(a LIKE 'x%')");
  EXPECT_EQ(ExprString("a IS NULL"), "(a IS NULL)");
  EXPECT_EQ(ExprString("a IS NOT NULL"), "(a IS NOT NULL)");
  EXPECT_EQ(ExprString("a IS DISTINCT FROM b"), "(a IS DISTINCT FROM b)");
}

TEST(ParserTest, DateLiteral) {
  auto r = Parser::ParseExpression("DATE '2024-02-29'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->literal.kind(), TypeKind::kDate);
  EXPECT_FALSE(Parser::ParseExpression("DATE '2023-02-29'").ok());
}

TEST(ParserTest, CountVariants) {
  auto star = Parser::ParseExpression("COUNT(*)");
  ASSERT_TRUE(star.ok());
  EXPECT_TRUE(star.value()->star_arg);
  auto distinct = Parser::ParseExpression("COUNT(DISTINCT x)");
  ASSERT_TRUE(distinct.ok());
  EXPECT_TRUE(distinct.value()->distinct);
  auto filtered = Parser::ParseExpression("SUM(x) FILTER (WHERE x > 0)");
  ASSERT_TRUE(filtered.ok());
  EXPECT_NE(filtered.value()->filter, nullptr);
}

TEST(ParserTest, Subqueries) {
  EXPECT_NE(MustParse("SELECT (SELECT MAX(x) FROM t) AS m"), nullptr);
  EXPECT_NE(MustParse("SELECT * FROM t WHERE EXISTS (SELECT 1 FROM s)"),
            nullptr);
  EXPECT_NE(MustParse("SELECT * FROM t WHERE a IN (SELECT b FROM s)"),
            nullptr);
  EXPECT_NE(MustParse("SELECT * FROM (SELECT a FROM t) AS sub"), nullptr);
}

TEST(ParserTest, MultipleStatements) {
  Parser parser("SELECT 1; SELECT 2;; SELECT 3");
  auto r = parser.ParseStatements();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().size(), 3u);
}

TEST(ParserTest, OrderByOptions) {
  StmtPtr stmt = MustParse(
      "SELECT a FROM t ORDER BY a DESC NULLS LAST, 1 ASC LIMIT 5 OFFSET 2");
  ASSERT_EQ(stmt->select->order_by.size(), 2u);
  EXPECT_TRUE(stmt->select->order_by[0].desc);
  EXPECT_EQ(stmt->select->order_by[0].nulls_first, false);
  EXPECT_NE(stmt->select->limit, nullptr);
  EXPECT_NE(stmt->select->offset, nullptr);
}

TEST(ParserTest, ErrorMessagesCarryPosition) {
  auto r = Parser::Parse("SELECT FROM t");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos);
}

TEST(ParserTest, Errors) {
  for (const char* bad : {
           "SELECT",
           "SELECT a FROM",
           "SELECT a FROM t WHERE",
           "SELECT a b c FROM t",
           "CREATE VIEW v",
           "INSERT t VALUES (1)",
           "SELECT a FROM t GROUP",
           "SELECT m AT () extra" /* trailing input */,
           "SELECT m AT (FOO) FROM t",
           "SELECT CASE END",
       }) {
    EXPECT_FALSE(Parser::Parse(bad).ok()) << bad;
  }
}

TEST(ParserTest, RoundTripThroughToString) {
  const char* queries[] = {
      "SELECT a, SUM(b) AS s FROM t WHERE c > 1 GROUP BY a HAVING SUM(b) > 2",
      "SELECT *, SUM(revenue) AS MEASURE r FROM Orders",
      "SELECT prodName, AGGREGATE(profitMargin) FROM EnhancedOrders GROUP BY prodName",
      "SELECT a FROM t JOIN s USING (k) WHERE a <> 'Bob'",
  };
  for (const char* q : queries) {
    StmtPtr stmt = MustParse(q);
    ASSERT_NE(stmt, nullptr);
    std::string printed = stmt->ToString();
    StmtPtr reparsed = MustParse(printed);
    ASSERT_NE(reparsed, nullptr) << printed;
    EXPECT_EQ(reparsed->ToString(), printed) << q;
  }
}

}  // namespace
}  // namespace msql

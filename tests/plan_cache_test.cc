// Plan-cache correctness (docs/NETWORKING.md): a cache hit must be
// indistinguishable from a cold execution under every measure strategy,
// entries must invalidate when the catalog generation moves, and parameter
// binding against a prepared plan must fail with a typed error on type
// mismatch.

#include <string>
#include <vector>

#include "engine/engine.h"
#include "gtest/gtest.h"
#include "testing/compare.h"

namespace msql {
namespace {

constexpr char kSetup[] = R"(
CREATE TABLE Orders (prodName VARCHAR, custName VARCHAR, revenue INTEGER);
INSERT INTO Orders VALUES
  ('Happy', 'Alice', 6), ('Acme', 'Bob', 5), ('Happy', 'Alice', 7),
  ('Whizz', 'Celia', 3), ('Happy', 'Bob', 4);
CREATE VIEW EO AS SELECT *, SUM(revenue) AS MEASURE r FROM Orders;
)";

const char* kQueries[] = {
    "SELECT prodName, AGGREGATE(r) AS v FROM EO GROUP BY prodName "
    "ORDER BY prodName",
    "SELECT prodName, AGGREGATE(r) / (r AT (ALL)) AS frac FROM EO "
    "GROUP BY prodName ORDER BY prodName",
    "SELECT custName, r AT (ALL) AS total FROM EO GROUP BY custName "
    "ORDER BY custName",
};

EngineOptions MakeOptions(MeasureStrategy strategy, bool enable_cache) {
  EngineOptions options;
  options.measure_strategy = strategy;
  options.enable_plan_cache = enable_cache;
  return options;
}

TEST(PlanCacheTest, HitAfterPrepareMatchesColdExecutionUnderAllStrategies) {
  for (MeasureStrategy strategy :
       {MeasureStrategy::kNaive, MeasureStrategy::kMemoized,
        MeasureStrategy::kGrouped}) {
    Engine cold(MakeOptions(strategy, /*enable_cache=*/false));
    Engine warm(MakeOptions(strategy, /*enable_cache=*/true));
    ASSERT_TRUE(cold.Execute(kSetup).ok());
    ASSERT_TRUE(warm.Execute(kSetup).ok());
    for (const char* sql : kQueries) {
      auto baseline = cold.Query(sql);
      ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
      ASSERT_NE(baseline.value().stats(), nullptr);
      EXPECT_EQ(baseline.value().stats()->plan_cache,
                QueryStats::PlanCacheOutcome::kOff);

      // First execution fills the cache, the repeat must hit it.
      auto fill = warm.Query(sql);
      ASSERT_TRUE(fill.ok()) << fill.status().ToString();
      ASSERT_NE(fill.value().stats(), nullptr);
      EXPECT_EQ(fill.value().stats()->plan_cache,
                QueryStats::PlanCacheOutcome::kMiss);
      auto hit = warm.Query(sql);
      ASSERT_TRUE(hit.ok()) << hit.status().ToString();
      ASSERT_NE(hit.value().stats(), nullptr);
      EXPECT_EQ(hit.value().stats()->plan_cache,
                QueryStats::PlanCacheOutcome::kHit);

      auto diff = testing::DiffResults(baseline.value(), hit.value(),
                                       testing::CompareOptions{});
      EXPECT_FALSE(diff.has_value())
          << "strategy " << static_cast<int>(strategy) << ", query '" << sql
          << "': cached result diverged from cold execution: " << *diff;
    }
  }
}

TEST(PlanCacheTest, PreparedExecutionMatchesColdExecution) {
  Engine cold(MakeOptions(MeasureStrategy::kGrouped, false));
  Engine warm(MakeOptions(MeasureStrategy::kGrouped, true));
  ASSERT_TRUE(cold.Execute(kSetup).ok());
  ASSERT_TRUE(warm.Execute(kSetup).ok());
  const std::string sql =
      "SELECT prodName, AGGREGATE(r) AS v FROM EO WHERE revenue > ? "
      "GROUP BY prodName ORDER BY prodName";

  auto prepared = warm.PrepareSelect(sql, {TypeKind::kInt64});
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ(prepared.value()->param_count, 1);

  for (int64_t threshold : {0, 4, 6}) {
    auto baseline = cold.Query(
        "SELECT prodName, AGGREGATE(r) AS v FROM EO WHERE revenue > " +
        std::to_string(threshold) + " GROUP BY prodName ORDER BY prodName");
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    auto executed =
        warm.QueryPlanned(prepared.value(), {Value::Int(threshold)});
    ASSERT_TRUE(executed.ok()) << executed.status().ToString();
    ASSERT_NE(executed.value().stats(), nullptr);
    EXPECT_EQ(executed.value().stats()->plan_cache,
              QueryStats::PlanCacheOutcome::kHit);
    auto diff = testing::DiffResults(baseline.value(), executed.value(),
                                     testing::CompareOptions{});
    EXPECT_FALSE(diff.has_value())
        << "threshold " << threshold << ": " << *diff;
  }
}

TEST(PlanCacheTest, CatalogGenerationBumpInvalidates) {
  Engine db(MakeOptions(MeasureStrategy::kGrouped, true));
  ASSERT_TRUE(db.Execute(kSetup).ok());
  const char* sql = kQueries[0];

  ASSERT_TRUE(db.Query(sql).ok());
  auto hit = db.Query(sql);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit.value().stats()->plan_cache,
            QueryStats::PlanCacheOutcome::kHit);

  // Any catalog mutation moves the generation; the cached plan must not
  // survive it (it may reference dropped objects or stale data).
  ASSERT_TRUE(db.Execute("INSERT INTO Orders VALUES ('Acme', 'Dana', 9)")
                  .ok());
  auto after = db.Query(sql);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.value().stats()->plan_cache,
            QueryStats::PlanCacheOutcome::kMiss)
      << "stale plan served after catalog generation bump";
  // The re-prepared plan sees the new row: Acme is now 5 + 9.
  EXPECT_EQ(after.value().Get(0, "v").int_val(), 14);
  EXPECT_GE(db.plan_cache().stats().invalidations, 1u);

  // Prepared handles observe the same discipline: a stale handle is
  // refused with kCatalog so the caller re-prepares.
  auto prepared = db.PrepareSelect(kQueries[0], {});
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(db.Execute("INSERT INTO Orders VALUES ('Whizz', 'Eve', 1)")
                  .ok());
  auto stale = db.QueryPlanned(prepared.value(), {});
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), ErrorCode::kCatalog);
  EXPECT_NE(stale.status().message().find("stale"), std::string::npos)
      << stale.status().ToString();
}

TEST(PlanCacheTest, ParameterTypeMismatchIsTypedError) {
  Engine db(MakeOptions(MeasureStrategy::kGrouped, true));
  ASSERT_TRUE(db.Execute(kSetup).ok());
  auto prepared = db.PrepareSelect(
      "SELECT prodName FROM Orders WHERE revenue > ? ORDER BY prodName",
      {TypeKind::kInt64});
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  // Unconvertible value: a non-numeric string cannot bind an INT64 slot.
  auto mismatch =
      db.QueryPlanned(prepared.value(), {Value::String("not a number")});
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(mismatch.status().message().find("parameter $1 type mismatch"),
            std::string::npos)
      << mismatch.status().ToString();

  // Wrong arity is refused before execution.
  auto arity = db.QueryPlanned(prepared.value(), {});
  ASSERT_FALSE(arity.ok());
  EXPECT_EQ(arity.status().code(), ErrorCode::kInvalidArgument);

  // Losslessly convertible values coerce instead of failing.
  auto coerced = db.QueryPlanned(prepared.value(), {Value::String("4")});
  ASSERT_TRUE(coerced.ok()) << coerced.status().ToString();
  EXPECT_EQ(coerced.value().num_rows(), 3u);  // 6, 7, 5 > 4
}

TEST(PlanCacheTest, DeclaredArityMustMatchStatement) {
  Engine db(MakeOptions(MeasureStrategy::kGrouped, true));
  ASSERT_TRUE(db.Execute(kSetup).ok());
  auto wrong = db.PrepareSelect(
      "SELECT prodName FROM Orders WHERE revenue > ?", {});
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), ErrorCode::kBind);
}

TEST(PlanCacheTest, LruBoundsAndMetrics) {
  EngineOptions options;
  options.enable_plan_cache = true;
  options.plan_cache_max_entries = 4;
  Engine db(options);
  ASSERT_TRUE(db.Execute(kSetup).ok());

  for (int i = 0; i < 16; ++i) {
    auto r = db.Query("SELECT prodName FROM Orders WHERE revenue > " +
                      std::to_string(i) + " ORDER BY prodName");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  const PlanCache::Stats stats = db.plan_cache().stats();
  EXPECT_LE(stats.entries, 4u);
  EXPECT_GE(stats.evictions, 1u);

  const std::string metrics = db.MetricsText();
  for (const char* name :
       {"msql_plan_cache_hits_total", "msql_plan_cache_misses_total",
        "msql_plan_cache_evictions_total", "msql_plan_cache_entries",
        "msql_plan_cache_bytes"}) {
    EXPECT_NE(metrics.find(name), std::string::npos)
        << "metric " << name << " missing from exposition";
  }
}

TEST(PlanCacheTest, ExplainAnalyzeReportsOutcome) {
  Engine db(MakeOptions(MeasureStrategy::kGrouped, true));
  ASSERT_TRUE(db.Execute(kSetup).ok());
  const std::string analyze =
      std::string("EXPLAIN ANALYZE ") + kQueries[0];

  auto cold = db.Query(analyze);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_NE(cold.value().ToString().find("PlanCache: miss"),
            std::string::npos);

  // EXPLAIN ANALYZE probes the cache by canonical text, so the plain query
  // above it warms the entry it hits.
  ASSERT_TRUE(db.Query(kQueries[0]).ok());
  auto warm = db.Query(analyze);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_NE(warm.value().ToString().find("PlanCache: hit"),
            std::string::npos);

  Engine off(MakeOptions(MeasureStrategy::kGrouped, false));
  ASSERT_TRUE(off.Execute(kSetup).ok());
  auto disabled = off.Query(analyze);
  ASSERT_TRUE(disabled.ok()) << disabled.status().ToString();
  EXPECT_NE(disabled.value().ToString().find("PlanCache: off"),
            std::string::npos);
}

}  // namespace
}  // namespace msql

// Tests for the binder/planner layer observed through EXPLAIN: operator
// placement, measure propagation markers, grouping-set counts, and join
// algorithm selection hints.

#include "binder/binder.h"
#include "engine/engine.h"
#include "gtest/gtest.h"
#include "parser/parser.h"
#include "tests/paper_fixture.h"

namespace msql {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LoadPaperData(&db_);
    MustExecute(&db_,
                "CREATE VIEW EO AS SELECT *, SUM(revenue) AS MEASURE r "
                "FROM Orders");
  }

  std::string Plan(const std::string& sql) {
    auto r = db_.Explain(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\n  in: " << sql;
    return r.ok() ? r.value() : "";
  }

  Engine db_;
};

TEST_F(PlanTest, SimpleSelectIsProjectOverScan) {
  std::string plan = Plan("SELECT prodName FROM Orders");
  EXPECT_NE(plan.find("Project"), std::string::npos);
  EXPECT_NE(plan.find("Scan Orders"), std::string::npos);
  EXPECT_EQ(plan.find("Aggregate"), std::string::npos);
}

TEST_F(PlanTest, WhereBecomesFilter) {
  std::string plan = Plan("SELECT prodName FROM Orders WHERE revenue > 3");
  EXPECT_NE(plan.find("Filter (revenue > 3)"), std::string::npos);
}

TEST_F(PlanTest, GroupByBecomesAggregate) {
  std::string plan =
      Plan("SELECT prodName, SUM(revenue) FROM Orders GROUP BY prodName");
  EXPECT_NE(plan.find("Aggregate keys=[prodName] outs=[SUM(revenue)]"),
            std::string::npos);
}

TEST_F(PlanTest, HavingIsFilterAboveAggregate) {
  std::string plan = Plan(
      "SELECT prodName FROM Orders GROUP BY prodName HAVING COUNT(*) > 1");
  size_t filter = plan.find("Filter");
  size_t agg = plan.find("Aggregate");
  ASSERT_NE(filter, std::string::npos);
  ASSERT_NE(agg, std::string::npos);
  EXPECT_LT(filter, agg);  // filter printed above (before) the aggregate
}

TEST_F(PlanTest, RollupProducesMultipleSets) {
  std::string plan = Plan(
      "SELECT prodName, custName, COUNT(*) FROM Orders "
      "GROUP BY ROLLUP(prodName, custName)");
  EXPECT_NE(plan.find("sets=3"), std::string::npos);
}

TEST_F(PlanTest, MeasureViewCarriesMeasureMarker) {
  std::string plan = Plan("SELECT prodName, r FROM EO");
  EXPECT_NE(plan.find("measures=[r]"), std::string::npos);
}

TEST_F(PlanTest, MeasureEvalAppearsInAggregateOuts) {
  std::string plan =
      Plan("SELECT prodName, AGGREGATE(r) FROM EO GROUP BY prodName");
  EXPECT_NE(plan.find("r AT (VISIBLE)"), std::string::npos);
}

TEST_F(PlanTest, FilterPropagatesMeasures) {
  std::string plan = Plan("SELECT prodName, r FROM EO WHERE revenue > 3");
  // Both the filter node and the project above it should carry the measure.
  size_t first = plan.find("measures=[r]");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(plan.find("measures=[r]", first + 1), std::string::npos);
}

TEST_F(PlanTest, JoinShowsTypeAndCondition) {
  std::string plan = Plan(
      "SELECT o.prodName FROM Orders AS o "
      "LEFT JOIN Customers AS c ON o.custName = c.custName");
  EXPECT_NE(plan.find("Join LEFT ON"), std::string::npos);
}

TEST_F(PlanTest, SortBelowProjectForGroupedQuery) {
  std::string plan = Plan(
      "SELECT prodName, SUM(revenue) AS s FROM Orders "
      "GROUP BY prodName ORDER BY s DESC");
  size_t project = plan.find("Project");
  size_t sort = plan.find("Sort");
  ASSERT_NE(project, std::string::npos);
  ASSERT_NE(sort, std::string::npos);
  EXPECT_LT(project, sort);  // Project on top, Sort beneath
}

TEST_F(PlanTest, WindowNodeForOverClause) {
  std::string plan = Plan(
      "SELECT revenue, SUM(revenue) OVER (PARTITION BY prodName) FROM Orders");
  EXPECT_NE(plan.find("Window"), std::string::npos);
  EXPECT_NE(plan.find("PARTITION BY prodName"), std::string::npos);
}

TEST_F(PlanTest, LimitAndDistinctNodes) {
  std::string plan = Plan("SELECT DISTINCT prodName FROM Orders LIMIT 2");
  EXPECT_NE(plan.find("Limit"), std::string::npos);
  EXPECT_NE(plan.find("Distinct"), std::string::npos);
}

TEST_F(PlanTest, SetOpNode) {
  std::string plan = Plan(
      "SELECT prodName FROM Orders UNION SELECT custName FROM Customers");
  EXPECT_NE(plan.find("SetOp UNION"), std::string::npos);
}

TEST_F(PlanTest, ViewExpansionInlinesThePlan) {
  // The view is not a black box: EXPLAIN shows the expanded tree down to
  // the base-table scan.
  std::string plan = Plan("SELECT prodName FROM EO");
  EXPECT_NE(plan.find("Scan Orders"), std::string::npos);
}

TEST_F(PlanTest, BinderIsReusableAcrossStatements) {
  // One binder instance can bind successive statements without state leaks.
  Binder binder(&db_.catalog(), "");
  for (const char* sql :
       {"SELECT prodName FROM Orders",
        "SELECT prodName, AGGREGATE(r) FROM EO GROUP BY prodName",
        "SELECT COUNT(*) FROM Customers"}) {
    auto stmt = Parser::Parse(sql);
    ASSERT_TRUE(stmt.ok());
    auto plan = binder.Bind(*stmt.value()->select);
    EXPECT_TRUE(plan.ok()) << sql << ": " << plan.status().ToString();
  }
}

}  // namespace
}  // namespace msql

// Robustness: exotic combinations must either work or fail with a clean
// Status — never crash, hang, or silently corrupt. Also pins down the
// engine's documented choices for constructs the paper leaves open.

#include "engine/engine.h"
#include "gtest/gtest.h"
#include "tests/paper_fixture.h"

namespace msql {
namespace {

class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LoadPaperData(&db_);
    MustExecute(&db_,
                "CREATE VIEW EO AS SELECT *, SUM(revenue) AS MEASURE r "
                "FROM Orders");
  }

  // The query must either succeed or return a Status (no crash).
  void NoCrash(const std::string& sql) {
    auto r = db_.Query(sql);
    (void)r;
    SUCCEED();
  }

  Engine db_;
};

TEST_F(RobustnessTest, DeepModifierChains) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName,
           r AT (ALL) AT (SET prodName = 'Happy') AT (ALL)
             AT (SET prodName = 'Acme') AS v
    FROM EO GROUP BY prodName
  )sql");
  // Per section 3.5, (cse AT (m2)) AT (m1) applies m1 first: the chain
  // applies outermost-first, so the innermost AT (ALL) acts last and clears
  // the context entirely.
  for (const Row& row : rs.rows()) {
    EXPECT_EQ(row[1].int_val(), 25);
  }
}

TEST_F(RobustnessTest, ManyModifiersInOneAt) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName,
           r AT (ALL SET custName = 'Alice' SET custName = 'Bob'
                 ALL custName VISIBLE WHERE revenue > 0) AS v
    FROM EO GROUP BY prodName
  )sql");
  for (const Row& row : rs.rows()) {
    EXPECT_EQ(row[1].int_val(), 25);  // WHERE replaces everything
  }
}

TEST_F(RobustnessTest, MeasureInsideCaseAndArithmetic) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName,
           CASE WHEN AGGREGATE(r) > 10 THEN 'big' ELSE 'small' END AS size,
           AGGREGATE(r) * 2 + 1 AS scaled
    FROM EO GROUP BY prodName ORDER BY prodName
  )sql");
  EXPECT_EQ(rs.Get(0, "size").str(), "small");
  EXPECT_EQ(rs.Get(1, "size").str(), "big");
  EXPECT_EQ(rs.Get(1, "scaled").int_val(), 35);
}

TEST_F(RobustnessTest, TwoMeasureRefsInOneExpression) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, AGGREGATE(r) - r AT (ALL) AS below_total
    FROM EO GROUP BY prodName ORDER BY prodName
  )sql");
  EXPECT_EQ(rs.Get(0, "below_total").int_val(), 5 - 25);
}

TEST_F(RobustnessTest, UnionOfMeasureQueries) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, AGGREGATE(r) AS v FROM EO GROUP BY prodName
    UNION ALL
    SELECT custName, AGGREGATE(r) AS v FROM EO GROUP BY custName
  )sql");
  EXPECT_EQ(rs.num_rows(), 6u);  // 3 products + 3 customers
}

TEST_F(RobustnessTest, MeasureViewInCte) {
  ResultSet rs = MustQuery(&db_, R"sql(
    WITH m AS (SELECT *, SUM(cost) AS MEASURE c FROM Orders)
    SELECT prodName, AGGREGATE(c) AS cost FROM m GROUP BY prodName
    ORDER BY prodName
  )sql");
  EXPECT_EQ(rs.Get(1, "cost").int_val(), 9);  // Happy costs 4+4+1
}

TEST_F(RobustnessTest, SubqueryReturningMeasureTable) {
  // A measure survives two levels of derived tables with filters.
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, AGGREGATE(r) AS v
    FROM (SELECT * FROM (SELECT * FROM EO WHERE revenue > 2) AS a
          WHERE custName <> 'Celia') AS b
    GROUP BY prodName ORDER BY prodName
  )sql");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.Get(1, "v").int_val(), 17);  // Happy: all orders visible
}

TEST_F(RobustnessTest, SelfJoinOfMeasureView) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT a.prodName, AGGREGATE(a.r) AS ra, AGGREGATE(b.r) AS rb
    FROM EO AS a JOIN EO AS b ON a.prodName = b.prodName
    GROUP BY a.prodName ORDER BY a.prodName
  )sql");
  ASSERT_EQ(rs.num_rows(), 3u);
  // Both sides carry the same measure; grain preserved on each side.
  for (size_t i = 0; i < rs.num_rows(); ++i) {
    EXPECT_TRUE(Value::NotDistinct(rs.Get(i, "ra"), rs.Get(i, "rb")));
  }
  EXPECT_EQ(rs.Get(1, "ra").int_val(), 17);
}

TEST_F(RobustnessTest, MeasureOverValueslessSelect) {
  // FROM-less SELECT with AGGREGATE of nothing is a bind error, not a crash.
  NoCrash("SELECT AGGREGATE(nothing)");
}

TEST_F(RobustnessTest, GracefulErrorsForExoticMisuse) {
  for (const char* bad : {
           "SELECT r AT (SET r = 1) FROM EO GROUP BY prodName",
           "SELECT r AT (WHERE r > 1) FROM EO GROUP BY prodName",
           "SELECT AGGREGATE(r + revenue) FROM EO",
           "SELECT CURRENT prodName FROM EO GROUP BY prodName",
           "SELECT prodName FROM EO GROUP BY r",
       }) {
    auto result = db_.Query(bad);
    EXPECT_FALSE(result.ok()) << bad;
  }
}

TEST_F(RobustnessTest, AggregateOfMeasureExpression) {
  // AGGREGATE over an expression of a measure: allowed, the VISIBLE
  // modifier distributes to the inner measure references.
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, AGGREGATE(r * 2) AS v FROM EO GROUP BY prodName
    ORDER BY prodName
  )sql");
  EXPECT_EQ(rs.Get(0, "v").int_val(), 10);
}

TEST_F(RobustnessTest, WindowAndMeasureSideBySide) {
  // A window function and a bare measure in the same (non-grouped) query.
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, revenue,
           SUM(revenue) OVER (PARTITION BY prodName) AS win_total,
           r AT (WHERE prodName = o.prodName) AS measure_total
    FROM EO AS o ORDER BY prodName, revenue
  )sql");
  for (size_t i = 0; i < rs.num_rows(); ++i) {
    EXPECT_TRUE(
        Value::NotDistinct(rs.Get(i, "win_total"), rs.Get(i, "measure_total")));
  }
}

TEST_F(RobustnessTest, LongInListAndManyColumns) {
  std::string in_list = "SELECT prodName FROM Orders WHERE revenue IN (";
  for (int i = 0; i < 500; ++i) {
    if (i > 0) in_list += ",";
    in_list += std::to_string(i);
  }
  in_list += ")";
  ResultSet rs = MustQuery(&db_, in_list);
  EXPECT_EQ(rs.num_rows(), 5u);

  std::string wide = "SELECT ";
  for (int i = 0; i < 200; ++i) {
    if (i > 0) wide += ", ";
    wide += "revenue + " + std::to_string(i) + " AS c" + std::to_string(i);
  }
  wide += " FROM Orders";
  ResultSet rs2 = MustQuery(&db_, wide);
  EXPECT_EQ(rs2.num_columns(), 200u);
}

TEST_F(RobustnessTest, EmptyStringAndUnicodePassThrough) {
  MustExecute(&db_, "CREATE TABLE s (t VARCHAR); "
                    "INSERT INTO s VALUES (''), ('naïve — ünïcødé')");
  ResultSet rs = MustQuery(&db_, "SELECT t, LENGTH(t) AS l FROM s ORDER BY t");
  EXPECT_EQ(rs.Get(0, "t").str(), "");
  EXPECT_EQ(rs.Get(1, "t").str(), "naïve — ünïcødé");
}

TEST_F(RobustnessTest, HavingWithoutGroupBy) {
  ResultSet rs = MustQuery(
      &db_, "SELECT SUM(revenue) AS s FROM Orders HAVING SUM(revenue) > 10");
  EXPECT_EQ(rs.num_rows(), 1u);
  ResultSet none = MustQuery(
      &db_, "SELECT SUM(revenue) AS s FROM Orders HAVING SUM(revenue) > 100");
  EXPECT_EQ(none.num_rows(), 0u);
}

TEST_F(RobustnessTest, OrderByMeasurePassthroughPerRow) {
  // Sorting a non-grouped query by a measure evaluates it per row.
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, revenue FROM EO ORDER BY r DESC, prodName
  )sql");
  EXPECT_EQ(rs.num_rows(), 5u);
}

// --- unified recursion guards ----------------------------------------------
// Binder view expansion, plan execution and measure evaluation all run
// against EngineOptions::max_recursion_depth and trip the same
// kResourceExhausted "recursion limit exceeded" shape.

TEST_F(RobustnessTest, SelfReferentialViewTripsRecursionGuard) {
  // CREATE OR REPLACE makes v refer to itself: binding it must hit the
  // view-expansion depth guard, not overflow the stack.
  MustExecute(&db_, "CREATE VIEW v AS SELECT * FROM Orders");
  MustExecute(&db_, "CREATE OR REPLACE VIEW v AS SELECT * FROM v");
  auto r = db_.Query("SELECT * FROM v");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("recursion limit"), std::string::npos)
      << r.status().ToString();
}

TEST_F(RobustnessTest, DeepViewStackTripsRecursionGuard) {
  // CREATE VIEW binds its definition, so stacking views eventually trips
  // the view-expansion guard at creation time; everything below the limit
  // keeps working.
  MustExecute(&db_, "CREATE VIEW v0 AS SELECT * FROM Orders");
  Status trip;
  int deepest = 0;
  for (int i = 1; i <= 80; ++i) {
    Status st = db_.Execute("CREATE VIEW v" + std::to_string(i) +
                            " AS SELECT * FROM v" + std::to_string(i - 1));
    if (!st.ok()) {
      trip = st;
      break;
    }
    deepest = i;
  }
  ASSERT_FALSE(trip.ok()) << "80-deep view stack never tripped the guard";
  EXPECT_EQ(trip.code(), ErrorCode::kResourceExhausted);
  EXPECT_NE(trip.message().find("recursion limit"), std::string::npos)
      << trip.ToString();
  // A view comfortably below the limit is still usable (views near the
  // limit also spend executor depth, one plan node per inlined view).
  EXPECT_GT(deepest, 30);
  ResultSet rs = MustQuery(&db_, "SELECT COUNT(*) AS n FROM v30");
  EXPECT_EQ(rs.Get(0, "n").int_val(), 5);
}

TEST_F(RobustnessTest, SmallDepthOptionBoundsBothLayers) {
  // The same option drives the binder and the executor.
  Engine db;
  db.options().max_recursion_depth = 4;
  LoadPaperData(&db);

  // Deep view chain: trips in the binder (CREATE VIEW binds its
  // definition, so the chain fails as soon as it exceeds the option).
  MustExecute(&db, "CREATE VIEW w0 AS SELECT * FROM Orders");
  Status bind_trip;
  for (int i = 1; i <= 6 && bind_trip.ok(); ++i) {
    bind_trip = db.Execute("CREATE VIEW w" + std::to_string(i) +
                           " AS SELECT * FROM w" + std::to_string(i - 1));
  }
  ASSERT_FALSE(bind_trip.ok());
  EXPECT_EQ(bind_trip.code(), ErrorCode::kResourceExhausted);
  EXPECT_NE(bind_trip.message().find("view expansion"), std::string::npos)
      << bind_trip.ToString();

  // Deep derived-table nesting: trips in the executor.
  std::string q = "SELECT revenue FROM Orders";
  for (int i = 0; i < 8; ++i) {
    q = "SELECT revenue FROM (" + q + ") AS t" + std::to_string(i);
  }
  auto exec_trip = db.Query(q);
  ASSERT_FALSE(exec_trip.ok());
  EXPECT_EQ(exec_trip.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_NE(exec_trip.status().message().find("plan execution"),
            std::string::npos)
      << exec_trip.status().ToString();
}

TEST_F(RobustnessTest, QueryWorksAfterRecursionTrip) {
  MustExecute(&db_, "CREATE VIEW u AS SELECT * FROM Orders");
  MustExecute(&db_, "CREATE OR REPLACE VIEW u AS SELECT * FROM u");
  ASSERT_FALSE(db_.Query("SELECT * FROM u").ok());
  // The engine is unharmed: the next query over the base table succeeds.
  ResultSet rs = MustQuery(&db_, "SELECT COUNT(*) AS n FROM Orders");
  EXPECT_EQ(rs.Get(0, "n").int_val(), 5);
}

}  // namespace
}  // namespace msql

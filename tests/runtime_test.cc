// Unit tests for the concurrency runtime: ThreadPool, SharedMeasureCache
// (LRU bounds, generation invalidation, stats), QueryScheduler admission
// control, Session basics, engine-wide stats aggregation, and the
// generation counters that drive cross-query cache invalidation.

#include <atomic>
#include <future>
#include <string>
#include <vector>

#include "binder/binder.h"
#include "catalog/catalog.h"
#include "engine/engine.h"
#include "gtest/gtest.h"
#include "parser/parser.h"
#include "runtime/fingerprint.h"
#include "runtime/scheduler.h"
#include "runtime/session.h"
#include "runtime/shared_cache.h"
#include "runtime/thread_pool.h"

namespace msql {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(pool.Submit([&count] { ++count; }));
    }
    pool.Shutdown();  // drains the queue before joining
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, DestructorDrainsPendingWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(pool.Submit([&count] { ++count; }));
    }
  }
  EXPECT_EQ(count.load(), 50);
}

// ---------------------------------------------------------------------------
// SharedMeasureCache
// ---------------------------------------------------------------------------

TEST(SharedCacheTest, LookupAfterInsertHits) {
  SharedMeasureCache cache;
  cache.Insert("k1", Value::Int(42), /*generation=*/1);
  Value v;
  ASSERT_TRUE(cache.Lookup("k1", &v));
  EXPECT_EQ(v.int_val(), 42);
  EXPECT_FALSE(cache.Lookup("nope", &v));
  auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_GT(s.bytes, 0u);
}

TEST(SharedCacheTest, ReplacesSameKey) {
  SharedMeasureCache cache;
  cache.Insert("k", Value::Int(1), 1);
  cache.Insert("k", Value::Int(2), 1);
  Value v;
  ASSERT_TRUE(cache.Lookup("k", &v));
  EXPECT_EQ(v.int_val(), 2);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(SharedCacheTest, EvictsLeastRecentlyUsed) {
  // Budget fits ~2 entries; key "a" is kept hot by a lookup, so inserting a
  // third entry must evict "b", the least recently used.
  SharedMeasureCache cache(
      2 * SharedMeasureCache::ApproxEntryBytes("a", Value::Int(0)) + 8);
  cache.Insert("a", Value::Int(1), 1);
  cache.Insert("b", Value::Int(2), 1);
  Value v;
  ASSERT_TRUE(cache.Lookup("a", &v));  // refresh "a"
  cache.Insert("c", Value::Int(3), 1);
  EXPECT_TRUE(cache.Lookup("a", &v));
  EXPECT_FALSE(cache.Lookup("b", &v));
  EXPECT_TRUE(cache.Lookup("c", &v));
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().bytes, cache.max_bytes());
}

TEST(SharedCacheTest, OversizedEntryRejected) {
  SharedMeasureCache cache(16);  // smaller than any entry
  cache.Insert("key", Value::Int(1), 1);
  Value v;
  EXPECT_FALSE(cache.Lookup("key", &v));
  EXPECT_EQ(cache.stats().rejected, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(SharedCacheTest, InvalidationPurgesOldGenerations) {
  SharedMeasureCache cache;
  cache.Insert("old", Value::Int(1), 1);
  cache.Insert("new", Value::Int(2), 5);
  cache.InvalidateOlderThan(5);
  Value v;
  EXPECT_FALSE(cache.Lookup("old", &v));
  EXPECT_TRUE(cache.Lookup("new", &v));
}

TEST(SharedCacheTest, StaleInsertRejectedAfterInvalidation) {
  // The race this closes: a query snapshots generation 1, a mutation bumps
  // to 2 and invalidates, then the query tries to publish. The publish must
  // be dropped or the next reader would see pre-mutation data forever.
  SharedMeasureCache cache;
  cache.InvalidateOlderThan(2);
  cache.Insert("k", Value::Int(1), 1);
  Value v;
  EXPECT_FALSE(cache.Lookup("k", &v));
  EXPECT_EQ(cache.stats().rejected, 1u);
}

TEST(SharedCacheTest, ClearKeepsInvalidationFloor) {
  SharedMeasureCache cache;
  cache.InvalidateOlderThan(3);
  cache.Clear();
  cache.Insert("k", Value::Int(1), 2);  // still stale
  Value v;
  EXPECT_FALSE(cache.Lookup("k", &v));
}

TEST(SharedCacheTest, ShrinkingBudgetEvicts) {
  SharedMeasureCache cache;
  for (int i = 0; i < 10; ++i) {
    cache.Insert("key" + std::to_string(i), Value::Int(i), 1);
  }
  EXPECT_EQ(cache.stats().entries, 10u);
  cache.set_max_bytes(
      3 * SharedMeasureCache::ApproxEntryBytes("key0", Value::Int(0)) + 8);
  EXPECT_LE(cache.stats().bytes, cache.max_bytes());
  EXPECT_LT(cache.stats().entries, 10u);
}

// ---------------------------------------------------------------------------
// Generation counters (Table / Catalog)
// ---------------------------------------------------------------------------

TEST(GenerationTest, TableMutationsBumpGeneration) {
  Schema s;
  s.AddColumn(Column("x", DataType::Int64()));
  Table t("t", s);
  const uint64_t g0 = t.generation();
  ASSERT_TRUE(t.AppendRow({Value::Int(1)}).ok());
  EXPECT_GT(t.generation(), g0);
  const uint64_t g1 = t.generation();
  ASSERT_TRUE(t.AppendRows({{Value::Int(2)}, {Value::Int(3)}}).ok());
  EXPECT_GT(t.generation(), g1);
  const uint64_t g2 = t.generation();
  t.Clear();
  EXPECT_GT(t.generation(), g2);
}

TEST(GenerationTest, SnapshotUnaffectedByLaterWrites) {
  Schema s;
  s.AddColumn(Column("x", DataType::Int64()));
  Table t("t", s);
  ASSERT_TRUE(t.AppendRow({Value::Int(1)}).ok());
  Table::RowsSnapshot snap = t.snapshot();
  ASSERT_TRUE(t.AppendRow({Value::Int(2)}).ok());
  t.Clear();
  EXPECT_EQ(snap->size(), 1u);  // the snapshot is frozen
  EXPECT_EQ((*snap)[0][0].int_val(), 1);
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(GenerationTest, CatalogDdlBumpsGeneration) {
  Catalog c;
  const uint64_t g0 = c.generation();
  Schema s;
  s.AddColumn(Column("x", DataType::Int64()));
  ASSERT_TRUE(c.CreateTable("t", s, false, "").ok());
  const uint64_t g1 = c.generation();
  EXPECT_GT(g1, g0);
  ASSERT_TRUE(c.Grant("t", "alice").ok());
  const uint64_t g2 = c.generation();
  EXPECT_GT(g2, g1);
  ASSERT_TRUE(c.Drop("t", false, false).ok());
  EXPECT_GT(c.generation(), g2);
}

TEST(GenerationTest, DroppedEntrySnapshotStaysValid) {
  Catalog c;
  Schema s;
  s.AddColumn(Column("x", DataType::Int64()));
  ASSERT_TRUE(c.CreateTable("t", s, false, "").ok());
  Catalog::EntryPtr entry = c.Find("t");
  ASSERT_NE(entry, nullptr);
  ASSERT_TRUE(c.Drop("t", false, false).ok());
  EXPECT_EQ(c.Find("t"), nullptr);
  // The pinned snapshot (as a running query would hold) is still usable.
  EXPECT_EQ(entry->name, "t");
  ASSERT_NE(entry->table, nullptr);
  EXPECT_EQ(entry->table->num_rows(), 0u);
}

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

TEST(FingerprintTest, IndependentBindsOfSameSqlAgree) {
  Engine db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (a INTEGER, b VARCHAR)").ok());
  Binder b1(&db.catalog(), "");
  Binder b2(&db.catalog(), "");
  auto parse = [](const std::string& sql) {
    auto stmt = Parser::Parse(sql);
    EXPECT_TRUE(stmt.ok());
    return stmt.take();
  };
  auto s1 = parse("SELECT a, COUNT(*) FROM T WHERE b = 'x' GROUP BY a");
  auto s2 = parse("SELECT a, COUNT(*) FROM T WHERE b = 'x' GROUP BY a");
  auto p1 = b1.Bind(*s1->select);
  auto p2 = b2.Bind(*s2->select);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(FingerprintPlan(*p1.value()), FingerprintPlan(*p2.value()));
}

TEST(FingerprintTest, DifferentPredicatesDiffer) {
  Engine db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (a INTEGER, b VARCHAR)").ok());
  Binder binder(&db.catalog(), "");
  auto bind = [&](const std::string& sql) {
    auto stmt = Parser::Parse(sql);
    EXPECT_TRUE(stmt.ok());
    auto plan = binder.Bind(*stmt.value()->select);
    EXPECT_TRUE(plan.ok());
    return FingerprintPlan(*plan.value());
  };
  EXPECT_NE(bind("SELECT a FROM T WHERE a > 1"),
            bind("SELECT a FROM T WHERE a > 2"));
  EXPECT_NE(bind("SELECT a FROM T"), bind("SELECT b FROM T"));
}

// ---------------------------------------------------------------------------
// Sessions + engine stats
// ---------------------------------------------------------------------------

void SeedOrders(Engine* db) {
  ASSERT_TRUE(
      db->Execute("CREATE TABLE Orders (prodName VARCHAR, revenue INTEGER)")
          .ok());
  ASSERT_TRUE(db->Execute("INSERT INTO Orders VALUES ('Happy', 6), "
                          "('Acme', 5), ('Happy', 4), ('Whizz', 3)")
                  .ok());
  ASSERT_TRUE(
      db->Execute("CREATE VIEW EO AS SELECT *, SUM(revenue) AS MEASURE r "
                  "FROM Orders")
          .ok());
}

TEST(SessionTest, IndependentOptionSnapshots) {
  Engine db;
  SeedOrders(&db);
  SessionPtr memoized = db.CreateSession();
  SessionPtr naive = db.CreateSession();
  naive->options().measure_strategy = MeasureStrategy::kNaive;
  // Engine-level default mutated after session creation: sessions keep
  // their snapshot.
  db.options().max_result_rows = 1;

  const std::string q =
      "SELECT prodName, AGGREGATE(r) FROM EO GROUP BY prodName";
  auto r1 = memoized->Query(q);
  auto r2 = naive->Query(q);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r1.value().ToCsv(), r2.value().ToCsv());
  EXPECT_EQ(r1.value().num_rows(), 3u);
}

TEST(SessionTest, PerSessionUser) {
  Engine db;
  db.SetUser("owner");
  SeedOrders(&db);
  SessionPtr other = db.CreateSession();
  other->SetUser("mallory");
  EXPECT_FALSE(other->Query("SELECT * FROM Orders").ok());
  ASSERT_TRUE(db.Grant("Orders", "mallory").ok());
  EXPECT_TRUE(other->Query("SELECT * FROM Orders").ok());
}

TEST(SessionTest, CancelStopsOwnQueriesOnly) {
  Engine db;
  SeedOrders(&db);
  SessionPtr s1 = db.CreateSession();
  SessionPtr s2 = db.CreateSession();
  s1->Cancel();  // no queries in flight: no-op
  auto r = s2->Query("SELECT COUNT(*) FROM Orders");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows()[0][0].int_val(), 4);
}

TEST(EngineStatsTest, AggregatesAcrossQueries) {
  Engine db;
  SeedOrders(&db);
  const std::string q =
      "SELECT prodName, AGGREGATE(r) FROM EO GROUP BY prodName";
  ASSERT_TRUE(db.Query(q).ok());
  const EngineStats s1 = db.stats();
  EXPECT_GT(s1.queries, 0u);
  EXPECT_GT(s1.measure_evals, 0u);
  ASSERT_TRUE(db.Query(q).ok());
  const EngineStats s2 = db.stats();
  EXPECT_GT(s2.queries, s1.queries);
  EXPECT_GT(s2.measure_evals, s1.measure_evals);
}

TEST(EngineStatsTest, SharedCacheServesRepeatQueries) {
  Engine db;
  SeedOrders(&db);
  // The ratio query forces dimension-context evaluations (source scans),
  // not just the row-id fast path.
  const std::string q =
      "SELECT prodName, AGGREGATE(r) / (r AT (ALL)) FROM EO "
      "GROUP BY prodName";
  ASSERT_TRUE(db.Query(q).ok());
  const EngineStats cold = db.stats();
  EXPECT_GT(cold.shared_cache_insertions, 0u);
  EXPECT_GT(cold.measure_source_scans, 0u);

  ASSERT_TRUE(db.Query(q).ok());
  const EngineStats warm = db.stats();
  EXPECT_GT(warm.shared_cache_hits, cold.shared_cache_hits);
  // The warm run answered every measure evaluation from the shared cache:
  // no new source scans, no new fills.
  EXPECT_EQ(warm.measure_source_scans, cold.measure_source_scans);
  EXPECT_EQ(warm.shared_cache_insertions, cold.shared_cache_insertions);
}

TEST(EngineStatsTest, NaiveStrategySkipsSharedCache) {
  Engine db;
  db.options().measure_strategy = MeasureStrategy::kNaive;
  SeedOrders(&db);
  const std::string q =
      "SELECT prodName, AGGREGATE(r) FROM EO GROUP BY prodName";
  ASSERT_TRUE(db.Query(q).ok());
  ASSERT_TRUE(db.Query(q).ok());
  const EngineStats s = db.stats();
  EXPECT_EQ(s.shared_cache_insertions, 0u);
  EXPECT_EQ(s.shared_cache_hits, 0u);
  EXPECT_EQ(s.shared_cache_misses, 0u);
}

// ---------------------------------------------------------------------------
// Cache invalidation (satellite: DML/DDL must never serve stale measures)
// ---------------------------------------------------------------------------

int64_t TotalRevenue(Engine* db) {
  auto r = db->Query("SELECT AGGREGATE(r) FROM EO");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.value().rows()[0][0].int_val();
}

TEST(CacheInvalidationTest, InsertInvalidatesMeasureResults) {
  Engine db;
  SeedOrders(&db);
  EXPECT_EQ(TotalRevenue(&db), 18);
  // Warm the cache, then mutate; the second read must see the new row.
  ASSERT_TRUE(db.Execute("INSERT INTO Orders VALUES ('New', 100)").ok());
  EXPECT_EQ(TotalRevenue(&db), 118);
  ASSERT_TRUE(db.InsertRows("Orders", {{Value::String("Bulk"),
                                        Value::Int(1000)}})
                  .ok());
  EXPECT_EQ(TotalRevenue(&db), 1118);
}

TEST(CacheInvalidationTest, DdlInvalidatesMeasureResults) {
  Engine db;
  SeedOrders(&db);
  EXPECT_EQ(TotalRevenue(&db), 18);
  // Replacing the view changes the measure definition under the same name.
  ASSERT_TRUE(
      db.Execute("CREATE OR REPLACE VIEW EO AS "
                 "SELECT *, SUM(revenue * 2) AS MEASURE r FROM Orders")
          .ok());
  EXPECT_EQ(TotalRevenue(&db), 36);
}

TEST(CacheInvalidationTest, MatchesUncachedEngineAfterEveryMutation) {
  Engine cached;
  Engine naive;
  naive.options().measure_strategy = MeasureStrategy::kNaive;
  SeedOrders(&cached);
  SeedOrders(&naive);
  const std::string q =
      "SELECT prodName, AGGREGATE(r), AGGREGATE(r) / (r AT (ALL)) "
      "FROM EO GROUP BY prodName ORDER BY prodName";
  for (int i = 0; i < 5; ++i) {
    auto rc = cached.Query(q);
    auto rn = naive.Query(q);
    ASSERT_TRUE(rc.ok() && rn.ok());
    EXPECT_EQ(rc.value().ToCsv(), rn.value().ToCsv()) << "round " << i;
    const std::string ins = "INSERT INTO Orders VALUES ('P" +
                            std::to_string(i) + "', " + std::to_string(i + 1) +
                            ")";
    ASSERT_TRUE(cached.Execute(ins).ok());
    ASSERT_TRUE(naive.Execute(ins).ok());
  }
}

// ---------------------------------------------------------------------------
// QueryScheduler
// ---------------------------------------------------------------------------

TEST(SchedulerTest, ExecutesSubmittedQueries) {
  Engine db;
  SeedOrders(&db);
  SchedulerOptions opts;
  opts.num_threads = 2;
  QueryScheduler scheduler(opts);
  SessionPtr session = db.CreateSession();
  std::vector<QueryScheduler::QueryFuture> futures;
  for (int i = 0; i < 8; ++i) {
    auto f = scheduler.Submit(session,
                              "SELECT prodName, AGGREGATE(r) FROM EO "
                              "GROUP BY prodName");
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    futures.push_back(f.take());
  }
  for (auto& f : futures) {
    auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().num_rows(), 3u);
  }
  scheduler.Drain();
  EXPECT_EQ(scheduler.pending(), 0u);
  EXPECT_EQ(session->inflight(), 0);
}

TEST(SchedulerTest, RejectsWhenQueueFull) {
  Engine db;
  SeedOrders(&db);
  SchedulerOptions opts;
  opts.max_pending = 0;           // admit nothing: deterministic rejection
  opts.max_admission_wait_ms = 0; // instant-reject mode (no bounded wait)
  QueryScheduler scheduler(opts);
  SessionPtr session = db.CreateSession();
  auto f = scheduler.Submit(session, "SELECT 1");
  ASSERT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), ErrorCode::kResourceExhausted);
}

TEST(SchedulerTest, RejectsOverPerSessionLimit) {
  Engine db;
  SeedOrders(&db);
  SchedulerOptions opts;
  opts.max_inflight_per_session = 0;
  opts.max_admission_wait_ms = 0;  // instant-reject mode (no bounded wait)
  QueryScheduler scheduler(opts);
  SessionPtr session = db.CreateSession();
  auto f = scheduler.Submit(session, "SELECT 1");
  ASSERT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(scheduler.pending(), 0u);  // reservation rolled back
  EXPECT_EQ(session->inflight(), 0);
}

TEST(SchedulerTest, QueryErrorsTravelThroughFuture) {
  Engine db;
  QueryScheduler scheduler;
  SessionPtr session = db.CreateSession();
  auto f = scheduler.Submit(session, "SELECT * FROM NoSuchTable");
  ASSERT_TRUE(f.ok());
  auto r = f.take().get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kCatalog);
}

}  // namespace
}  // namespace msql

// Tests for paper section 5.5: the grant-based security model. A view with
// measures can be granted without exposing the underlying tables or hidden
// columns; views run with definer's rights.

#include "engine/engine.h"
#include "gtest/gtest.h"
#include "tests/paper_fixture.h"

namespace msql {
namespace {

class SecurityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.SetUser("owner");
    LoadPaperData(&db_);
    // The view hides custName and the raw revenue/cost columns; it exposes
    // only prodName plus measures.
    MustExecute(&db_, R"sql(
      CREATE VIEW ProductMargins AS
      SELECT prodName,
             (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE margin,
             SUM(revenue) AS MEASURE rev
      FROM Orders
    )sql");
  }
  Engine db_;
};

TEST_F(SecurityTest, OwnerSeesEverything) {
  ResultSet rs = MustQuery(&db_, "SELECT COUNT(*) AS n FROM Orders");
  EXPECT_EQ(rs.Get(0, "n").int_val(), 5);
}

TEST_F(SecurityTest, StrangerIsDeniedBaseTableAndView) {
  db_.SetUser("mallory");
  EXPECT_EQ(db_.Query("SELECT * FROM Orders").status().code(),
            ErrorCode::kPermission);
  EXPECT_EQ(db_.Query("SELECT prodName FROM ProductMargins").status().code(),
            ErrorCode::kPermission);
}

TEST_F(SecurityTest, GranteeCanUseViewButNotBaseTable) {
  ASSERT_TRUE(db_.Grant("ProductMargins", "analyst").ok());
  db_.SetUser("analyst");
  // Direct base-table access still denied.
  EXPECT_EQ(db_.Query("SELECT * FROM Orders").status().code(),
            ErrorCode::kPermission);
  // The view works, including measure evaluation that internally reads
  // Orders (definer's rights).
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, AGGREGATE(margin) AS m FROM ProductMargins
    GROUP BY prodName ORDER BY prodName
  )sql");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_NEAR(rs.Get(1, "m").double_val(), 8.0 / 17, 1e-9);
}

TEST_F(SecurityTest, HiddenColumnsAreNotReachable) {
  ASSERT_TRUE(db_.Grant("ProductMargins", "analyst").ok());
  db_.SetUser("analyst");
  // revenue / cost / custName are not projected by the view.
  for (const char* col : {"revenue", "cost", "custName"}) {
    auto r = db_.Query(std::string("SELECT ") + col + " FROM ProductMargins");
    EXPECT_FALSE(r.ok()) << col;
    EXPECT_EQ(r.status().code(), ErrorCode::kBind) << col;
  }
  // Nor can AT constrain them: they are not dimensions of the view.
  auto r = db_.Query(
      "SELECT rev AT (SET custName = 'Bob') FROM ProductMargins "
      "GROUP BY prodName");
  EXPECT_FALSE(r.ok());
}

TEST_F(SecurityTest, MeasureIsAHologramNotARowSet) {
  // The paper's hologram analogy: the grantee can interrogate the measure
  // along visible dimensions only, but gets consistent totals.
  ASSERT_TRUE(db_.Grant("ProductMargins", "analyst").ok());
  db_.SetUser("analyst");
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, AGGREGATE(rev) AS r, rev AT (ALL) AS total
    FROM ProductMargins GROUP BY prodName ORDER BY prodName
  )sql");
  int64_t sum = 0;
  for (const Row& row : rs.rows()) {
    sum += row[1].int_val();
    EXPECT_EQ(row[2].int_val(), 25);
  }
  EXPECT_EQ(sum, 25);
}

TEST_F(SecurityTest, GrantOnMissingObjectFails) {
  EXPECT_EQ(db_.Grant("nope", "x").code(), ErrorCode::kCatalog);
}

TEST_F(SecurityTest, DdlByStrangerOnOwnedTableFails) {
  db_.SetUser("mallory");
  EXPECT_EQ(db_.Execute("INSERT INTO Orders VALUES ('X','Y',DATE '2024-01-01',1,1)")
                .code(),
            ErrorCode::kPermission);
}

TEST_F(SecurityTest, ViewOverViewKeepsDefinerRights) {
  ASSERT_TRUE(db_.Grant("ProductMargins", "analyst").ok());
  db_.SetUser("analyst");
  // The analyst builds their own view on top of the granted view.
  MustExecute(&db_, R"sql(
    CREATE VIEW MyReport AS SELECT prodName, rev FROM ProductMargins
  )sql");
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT prodName, AGGREGATE(rev) AS r FROM MyReport GROUP BY prodName
    ORDER BY prodName
  )sql");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.Get(1, "r").int_val(), 17);
  // A third user still cannot see MyReport.
  db_.SetUser("other");
  EXPECT_EQ(db_.Query("SELECT * FROM MyReport").status().code(),
            ErrorCode::kPermission);
}

TEST_F(SecurityTest, ExpansionRespectsAccess) {
  db_.SetUser("mallory");
  auto r = db_.ExpandSql(
      "SELECT prodName, AGGREGATE(rev) FROM ProductMargins GROUP BY prodName");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kPermission);
}

}  // namespace
}  // namespace msql

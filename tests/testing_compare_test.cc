// Unit tests for the oracle's result normalization and comparison
// (src/testing/compare): ULP-tolerant doubles, NULL-as-not-distinct cells,
// row-order-insensitive result diffs, and numeric kind coercion.

#include <cmath>
#include <limits>

#include "gtest/gtest.h"
#include "tests/testing_matchers.h"
#include "testing/compare.h"

namespace msql {
namespace testing {
namespace {

ResultSet MakeResult(std::vector<std::string> names, std::vector<Row> rows) {
  std::vector<DataType> types(names.size());
  return ResultSet(std::move(names), std::move(types), std::move(rows));
}

TEST(ValuesAgreeTest, ExactAndNullCells) {
  CompareOptions opts;
  EXPECT_TRUE(ValuesAgree(Value::Int(7), Value::Int(7), opts));
  EXPECT_FALSE(ValuesAgree(Value::Int(7), Value::Int(8), opts));
  EXPECT_TRUE(ValuesAgree(Value::Null(), Value::Null(), opts));
  EXPECT_FALSE(ValuesAgree(Value::Null(), Value::Int(0), opts));
  EXPECT_TRUE(ValuesAgree(Value::String("x"), Value::String("x"), opts));
  EXPECT_FALSE(ValuesAgree(Value::String("x"), Value::String("y"), opts));
}

TEST(ValuesAgreeTest, DoublesWithinUlpsAgree) {
  CompareOptions opts;
  opts.double_rel_tol = 0;  // isolate the ULP rule
  double a = 0.1 + 0.2;     // 0.30000000000000004
  EXPECT_TRUE(ValuesAgree(Value::Double(a), Value::Double(0.3), opts));

  // A far-apart pair must not agree.
  EXPECT_FALSE(ValuesAgree(Value::Double(1.0), Value::Double(1.001), opts));

  // Exactly representable values agree with themselves at 0 ULPs.
  opts.double_ulps = 0;
  EXPECT_TRUE(ValuesAgree(Value::Double(1.5), Value::Double(1.5), opts));
  EXPECT_FALSE(
      ValuesAgree(Value::Double(1.5),
                  Value::Double(std::nextafter(1.5, 2.0)), opts));
}

TEST(ValuesAgreeTest, UlpComparisonIsMonotoneAcrossZero) {
  CompareOptions opts;
  opts.double_rel_tol = 0;
  opts.double_ulps = 4;
  // Tiny values of opposite sign straddle zero; the monotone bit map must
  // measure their distance through it, not wrap.
  double eps = std::numeric_limits<double>::denorm_min();
  EXPECT_TRUE(ValuesAgree(Value::Double(eps), Value::Double(-eps), opts));
  EXPECT_TRUE(ValuesAgree(Value::Double(0.0), Value::Double(-0.0), opts));
  EXPECT_FALSE(ValuesAgree(Value::Double(1e-300), Value::Double(-1e-300),
                           opts));
}

TEST(ValuesAgreeTest, SpecialDoubles) {
  CompareOptions opts;
  double inf = std::numeric_limits<double>::infinity();
  double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(ValuesAgree(Value::Double(nan), Value::Double(nan), opts));
  EXPECT_TRUE(ValuesAgree(Value::Double(inf), Value::Double(inf), opts));
  EXPECT_FALSE(ValuesAgree(Value::Double(inf), Value::Double(-inf), opts));
  EXPECT_FALSE(ValuesAgree(Value::Double(nan), Value::Double(1.0), opts));
  EXPECT_FALSE(
      ValuesAgree(Value::Double(inf),
                  Value::Double(std::numeric_limits<double>::max()), opts));
}

TEST(ValuesAgreeTest, NumericKindMismatch) {
  CompareOptions opts;
  // The textual expansion can turn an INT64 column into DOUBLE.
  EXPECT_TRUE(ValuesAgree(Value::Int(3), Value::Double(3.0), opts));
  EXPECT_FALSE(ValuesAgree(Value::Int(3), Value::Double(3.5), opts));
  opts.allow_numeric_kind_mismatch = false;
  EXPECT_FALSE(ValuesAgree(Value::Int(3), Value::Double(3.0), opts));
}

TEST(DiffResultsTest, RowOrderIsNormalizedAway) {
  ResultSet a = MakeResult({"k", "v"}, {{Value::Int(1), Value::Int(10)},
                                        {Value::Int(2), Value::Int(20)},
                                        {Value::Null(), Value::Int(30)}});
  ResultSet b = MakeResult({"k", "v"}, {{Value::Null(), Value::Int(30)},
                                        {Value::Int(2), Value::Int(20)},
                                        {Value::Int(1), Value::Int(10)}});
  EXPECT_EQ(DiffResults(a, b), std::nullopt);
  EXPECT_TRUE(ResultsAgree(a, b));
}

TEST(DiffResultsTest, ShapeAndCellMismatchesAreReported) {
  ResultSet a = MakeResult({"k"}, {{Value::Int(1)}});
  ResultSet wide = MakeResult({"k", "v"}, {{Value::Int(1), Value::Int(2)}});
  ResultSet tall = MakeResult({"k"}, {{Value::Int(1)}, {Value::Int(2)}});
  ResultSet off = MakeResult({"k"}, {{Value::Int(3)}});
  ASSERT_TRUE(DiffResults(a, wide).has_value());
  ASSERT_TRUE(DiffResults(a, tall).has_value());
  auto diff = DiffResults(a, off);
  ASSERT_TRUE(diff.has_value());
  EXPECT_NE(diff->find("1"), std::string::npos);
  EXPECT_NE(diff->find("3"), std::string::npos);
}

TEST(DiffResultsTest, NormalizedRowsSortTotally) {
  ResultSet rs = MakeResult(
      {"x"}, {{Value::Int(2)}, {Value::Null()}, {Value::Int(1)}});
  std::vector<Row> sorted = NormalizedRows(rs);
  ASSERT_EQ(sorted.size(), 3u);
  // Whatever the engine's NULL placement, the order must be deterministic
  // and totally sorted under Value::Compare.
  for (size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_LE(Value::Compare(sorted[i - 1][0], sorted[i][0]), 0);
  }
}

}  // namespace
}  // namespace testing
}  // namespace msql

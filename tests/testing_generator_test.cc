// Unit tests for the msqlcheck case generator and the script round-trip
// (src/testing/generator, src/testing/case_spec): cross-platform seed
// determinism, well-formed setup on every seed, option plumbing, and
// ToSql() <-> ParseScript() stability.

#include <set>

#include "engine/engine.h"
#include "gtest/gtest.h"
#include "testing/generator.h"

namespace msql {
namespace testing {
namespace {

TEST(GeneratorTest, SameSeedSameCase) {
  for (uint64_t seed : {0ull, 1ull, 7ull, 123456789ull}) {
    CaseSpec a = GenerateCase(seed);
    CaseSpec b = GenerateCase(seed);
    EXPECT_EQ(a.ToSql(), b.ToSql()) << "seed " << seed;
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  // Not a hard guarantee per pair, but across a window every seed
  // colliding would mean the seed is ignored.
  std::set<std::string> cases;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    cases.insert(GenerateCase(seed).ToSql());
  }
  EXPECT_GT(cases.size(), 15u);
}

TEST(GeneratorTest, SetupRunsOnAFreshEngine) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    CaseSpec spec = GenerateCase(seed);
    Engine db;
    for (const std::string& stmt : spec.SetupStatements()) {
      Status st = db.Execute(stmt);
      ASSERT_TRUE(st.ok()) << "seed " << seed << ": " << stmt << "\n"
                           << st.ToString();
    }
  }
}

TEST(GeneratorTest, OptionsAreRespected) {
  GeneratorOptions opts;
  opts.max_rows = 8;
  opts.num_queries = 2;
  opts.metamorphic = false;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    CaseSpec spec = GenerateCase(seed, opts);
    int differential_queries = 0;
    for (const Check& c : spec.checks) {
      EXPECT_EQ(c.kind, CheckKind::kDifferential) << "seed " << seed;
      differential_queries += static_cast<int>(c.queries.size());
    }
    EXPECT_LE(differential_queries, opts.num_queries) << "seed " << seed;
    EXPECT_GT(differential_queries, 0) << "seed " << seed;
    for (const TableSpec& t : spec.tables) {
      EXPECT_LE(t.rows.size(), static_cast<size_t>(opts.max_rows))
          << "seed " << seed << " table " << t.name;
    }
  }
}

TEST(GeneratorTest, MetamorphicChecksAppearAcrossSeeds) {
  std::set<CheckKind> seen;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    for (const Check& c : GenerateCase(seed).checks) seen.insert(c.kind);
  }
  EXPECT_TRUE(seen.count(CheckKind::kDifferential));
  EXPECT_TRUE(seen.count(CheckKind::kEqualPair));
  EXPECT_TRUE(seen.count(CheckKind::kTlp));
}

TEST(GeneratorTest, AdversarialShapesAppearAcrossSeeds) {
  // The generator must keep producing the inputs the paper's semantics
  // make tricky: NULL dimension values, duplicate rows, empty tables.
  bool any_null = false, any_dup = false, any_empty = false;
  for (uint64_t seed = 0; seed < 60; ++seed) {
    for (const TableSpec& t : GenerateCase(seed).tables) {
      if (t.rows.empty()) any_empty = true;
      std::set<std::vector<std::string>> distinct;
      for (const auto& row : t.rows) {
        if (!distinct.insert(row).second) any_dup = true;
        for (const std::string& cell : row) {
          if (cell == "NULL") any_null = true;
        }
      }
    }
  }
  EXPECT_TRUE(any_null);
  EXPECT_TRUE(any_dup);
  EXPECT_TRUE(any_empty);
}

TEST(CaseSpecTest, ScriptRoundTripPreservesTheCase) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    CaseSpec spec = GenerateCase(seed);
    std::string script = spec.ToSql();
    auto reparsed = ParseScript(script);
    ASSERT_TRUE(reparsed.ok()) << "seed " << seed << ": "
                               << reparsed.status().ToString();
    const CaseSpec& r = reparsed.value();
    EXPECT_EQ(r.seed, seed);
    // ParseScript flattens tables into setup statements; the executable
    // statement sequence must be identical.
    EXPECT_EQ(r.SetupStatements(), spec.SetupStatements()) << "seed " << seed;
    ASSERT_EQ(r.checks.size(), spec.checks.size()) << "seed " << seed;
    for (size_t i = 0; i < r.checks.size(); ++i) {
      EXPECT_EQ(r.checks[i].kind, spec.checks[i].kind);
      EXPECT_EQ(r.checks[i].agg, spec.checks[i].agg);
      EXPECT_EQ(r.checks[i].queries, spec.checks[i].queries);
    }
    // And the round-trip is a fixpoint: rendering the reparsed spec gives
    // a script that parses to the same statements again.
    auto again = ParseScript(r.ToSql());
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.value().SetupStatements(), spec.SetupStatements());
  }
}

TEST(CaseSpecTest, ParseScriptHandlesPlainSqlFiles) {
  // A hand-written file with no directives: every SELECT becomes its own
  // differential check.
  auto spec = ParseScript(
      "CREATE TABLE t (x INTEGER);\n"
      "INSERT INTO t VALUES (1), (2);\n"
      "SELECT x FROM t;\n"
      "SELECT COUNT(*) FROM t;\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec.value().SetupStatements().size(), 2u);
  ASSERT_EQ(spec.value().checks.size(), 2u);
  EXPECT_EQ(spec.value().checks[0].kind, CheckKind::kDifferential);
}

}  // namespace
}  // namespace testing
}  // namespace msql

// Shared gtest assertions over the testing subsystem's result comparison
// (src/testing/compare): the same normalization the msqlcheck oracle uses —
// row order ignored, NULLs compare IS NOT DISTINCT FROM, doubles tolerate a
// few ULPs — packaged for unit and property tests so every suite agrees on
// what "same result" means.

#ifndef MSQL_TESTS_TESTING_MATCHERS_H_
#define MSQL_TESTS_TESTING_MATCHERS_H_

#include "engine/result_set.h"
#include "gtest/gtest.h"
#include "testing/compare.h"

namespace msql {
namespace testing {

// Whole-result agreement: EXPECT_TRUE(ResultsAgree(a, b)). On failure the
// message is the oracle's first-difference description.
inline ::testing::AssertionResult ResultsAgree(const ResultSet& a,
                                               const ResultSet& b,
                                               const CompareOptions& opts = {}) {
  if (auto diff = DiffResults(a, b, opts)) {
    return ::testing::AssertionFailure() << *diff;
  }
  return ::testing::AssertionSuccess();
}

// Cell-level agreement with the same numeric tolerance.
inline ::testing::AssertionResult CellsAgree(const Value& a, const Value& b,
                                             const CompareOptions& opts = {}) {
  if (!ValuesAgree(a, b, opts)) {
    return ::testing::AssertionFailure()
           << a.ToString() << " vs " << b.ToString();
  }
  return ::testing::AssertionSuccess();
}

}  // namespace testing
}  // namespace msql

#endif  // MSQL_TESTS_TESTING_MATCHERS_H_

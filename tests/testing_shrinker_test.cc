// Unit tests for the delta-debugging shrinker (src/testing/shrinker) and
// the msqlcheck harness around it. The central property, required by the
// testing subsystem's charter: an injected discrepancy is minimized to a
// near-minimal case while still reproducing, and the shrinker can never
// "simplify" a failure into a case whose setup no longer runs.

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "testing/generator.h"
#include "testing/harness.h"
#include "testing/oracle.h"
#include "testing/shrinker.h"

namespace msql {
namespace testing {
namespace {

// A deliberately bloated case: two tables, two setup statements, three
// checks. Only fragments of it are relevant to the injected failure.
CaseSpec BloatedCase() {
  CaseSpec spec;
  spec.seed = 99;
  TableSpec t0;
  t0.name = "t0";
  t0.columns = {{"d0", "VARCHAR"}, {"d1", "INTEGER"}, {"v0", "INTEGER"}};
  t0.rows = {{"'A'", "1", "10"}, {"'B'", "2", "20"}, {"'C'", "3", "42"},
             {"'D'", "4", "30"}, {"'E'", "5", "40"}, {"'F'", "6", "50"},
             {"NULL", "7", "60"}, {"'H'", "8", "70"}};
  TableSpec t1;
  t1.name = "t1";
  t1.columns = {{"k", "INTEGER"}};
  t1.rows = {{"1"}, {"2"}};
  spec.tables = {t0, t1};
  spec.setup = {
      "CREATE VIEW V0 AS SELECT *, COUNT(*) AS MEASURE m0 FROM t0",
      "CREATE VIEW V1 AS SELECT k FROM t1",
  };
  Check c0;
  c0.label = "irrelevant";
  c0.queries = {"SELECT k FROM t1", "SELECT COUNT(*) FROM t1"};
  Check c1;
  c1.label = "interesting";
  c1.queries = {"SELECT d0, m0 AT (ALL) AS x FROM V0 WHERE d1 >= 0 "
                "GROUP BY d0 ORDER BY d0 LIMIT 7",
                "SELECT d1 FROM t0"};
  Check c2;
  c2.label = "also irrelevant";
  c2.queries = {"SELECT 1"};
  spec.checks = {c0, c1, c2};
  return spec;
}

// The injected discrepancy: the bug "reproduces" whenever some query still
// says `AT (ALL)` and table t0 still holds the cell 42.
bool InjectedFailure(const CaseSpec& spec) {
  bool query_hit = false;
  for (const Check& c : spec.checks) {
    for (const std::string& q : c.queries) {
      if (q.find("AT (ALL)") != std::string::npos) query_hit = true;
    }
  }
  if (!query_hit) return false;
  for (const TableSpec& t : spec.tables) {
    if (t.name != "t0") continue;
    for (const auto& row : t.rows) {
      for (const std::string& cell : row) {
        if (cell == "42") return true;
      }
    }
  }
  return false;
}

TEST(ShrinkerTest, MinimizesInjectedDiscrepancy) {
  CaseSpec spec = BloatedCase();
  ASSERT_TRUE(InjectedFailure(spec));

  ShrinkStats stats;
  CaseSpec minimal = Shrink(std::move(spec), InjectedFailure,
                            /*max_predicate_calls=*/500, &stats);

  // Still reproduces, and got materially smaller.
  EXPECT_TRUE(InjectedFailure(minimal));
  EXPECT_GT(stats.accepted_edits, 0);

  // Exactly the failing query survives.
  int total_queries = 0;
  for (const Check& c : minimal.checks) {
    total_queries += static_cast<int>(c.queries.size());
  }
  EXPECT_EQ(total_queries, 1);
  ASSERT_EQ(minimal.checks.size(), 1u);
  EXPECT_NE(minimal.checks[0].queries[0].find("AT (ALL)"), std::string::npos);

  // The irrelevant table, the setup statements, the seven irrelevant rows,
  // and the two irrelevant columns are all gone.
  ASSERT_EQ(minimal.tables.size(), 1u);
  EXPECT_EQ(minimal.tables[0].name, "t0");
  ASSERT_EQ(minimal.tables[0].rows.size(), 1u);
  ASSERT_EQ(minimal.tables[0].columns.size(), 1u);
  EXPECT_EQ(minimal.tables[0].rows[0][0], "42");
  EXPECT_TRUE(minimal.setup.empty());

  // The query itself was simplified: the clauses the predicate does not
  // depend on (WHERE / ORDER BY / LIMIT) are gone.
  const std::string& q = minimal.checks[0].queries[0];
  EXPECT_EQ(q.find("ORDER BY"), std::string::npos) << q;
  EXPECT_EQ(q.find("LIMIT"), std::string::npos) << q;
  EXPECT_EQ(q.find("WHERE"), std::string::npos) << q;
}

TEST(ShrinkerTest, RespectsThePredicateBudget) {
  CaseSpec spec = BloatedCase();
  ShrinkStats stats;
  Shrink(std::move(spec), InjectedFailure, /*max_predicate_calls=*/25,
         &stats);
  EXPECT_LE(stats.predicate_calls, 25);
}

TEST(ShrinkerTest, ReturnsInputWhenNothingCanBeRemoved) {
  CaseSpec spec;
  spec.seed = 1;
  Check c;
  c.queries = {"SELECT 1"};
  spec.checks = {c};
  ShrinkStats stats;
  CaseSpec minimal =
      Shrink(std::move(spec), [](const CaseSpec&) { return true; },
             /*max_predicate_calls=*/200, &stats);
  ASSERT_EQ(minimal.checks.size(), 1u);
  EXPECT_EQ(minimal.checks[0].queries, std::vector<std::string>{"SELECT 1"});
}

TEST(ShrinkerTest, QuerySimplificationsCoverTheMajorClauses) {
  std::vector<std::string> cands = QuerySimplifications(
      "SELECT d0, m0 AT (ALL d0 VISIBLE) AS x FROM V0 WHERE d1 > 2 "
      "GROUP BY d0, d1 ORDER BY d0 LIMIT 5");
  ASSERT_FALSE(cands.empty());
  auto any = [&](auto pred) {
    return std::any_of(cands.begin(), cands.end(), pred);
  };
  // Remove WHERE entirely.
  EXPECT_TRUE(any([](const std::string& s) {
    return s.find("WHERE") == std::string::npos;
  }));
  // Remove ORDER BY / LIMIT.
  EXPECT_TRUE(any([](const std::string& s) {
    return s.find("ORDER BY") == std::string::npos;
  }));
  EXPECT_TRUE(any([](const std::string& s) {
    return s.find("LIMIT") == std::string::npos;
  }));
  // Collapse the AT expression to its bare measure.
  EXPECT_TRUE(any([](const std::string& s) {
    return s.find("AT (") == std::string::npos &&
           s.find("m0") != std::string::npos;
  }));
  // Drop one GROUP BY item (each candidate applies a single mutation, so
  // `d1` still appears in the untouched WHERE clause).
  EXPECT_TRUE(any([](const std::string& s) {
    return s.find("GROUP BY d0") != std::string::npos &&
           s.find("GROUP BY d0, d1") == std::string::npos;
  }));
  // Malformed input yields no candidates rather than an error.
  EXPECT_TRUE(QuerySimplifications("SELEC nonsense FROM").empty());
}

TEST(OracleTest, SetupFailureIsFlaggedNotMinimized) {
  CaseSpec broken;
  broken.setup = {"CREATE VIEW V0 AS SELECT * FROM no_such_table"};
  Check c;
  c.queries = {"SELECT 1"};
  broken.checks = {c};
  CaseOutcome outcome = RunCase(broken);
  EXPECT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.setup_failed);

  // The harness predicate built on this flag refuses such candidates, so a
  // shrink of a healthy-setup failure can never drift into one.
  CaseSpec healthy;
  Check pair;
  pair.kind = CheckKind::kEqualPair;
  pair.queries = {"SELECT 17", "SELECT 18"};  // injected real discrepancy
  healthy.checks = {pair};
  healthy.tables = BloatedCase().tables;
  healthy.setup = BloatedCase().setup;
  auto still_fails = [](const CaseSpec& cand) {
    CaseOutcome o = RunCase(cand);
    return !o.ok() && !o.setup_failed;
  };
  ASSERT_TRUE(still_fails(healthy));
  CaseSpec minimal = Shrink(std::move(healthy), still_fails, 400);
  EXPECT_TRUE(still_fails(minimal));
  // Everything irrelevant to the pair mismatch is gone.
  EXPECT_TRUE(minimal.tables.empty());
  EXPECT_TRUE(minimal.setup.empty());
  ASSERT_EQ(minimal.checks.size(), 1u);
  EXPECT_EQ(minimal.checks[0].queries.size(), 2u);
}

TEST(HarnessTest, SeedRunsAreDeterministic) {
  HarnessOptions options;
  options.generator.max_rows = 16;
  options.generator.num_queries = 2;
  options.shrink_failures = false;
  SeedReport a = RunSeed(3, options);
  SeedReport b = RunSeed(3, options);
  EXPECT_EQ(a.outcome.ok(), b.outcome.ok());
  EXPECT_EQ(a.outcome.queries_run, b.outcome.queries_run);
  EXPECT_EQ(a.outcome.expansion_skips, b.outcome.expansion_skips);
}

TEST(HarnessTest, SmokeWindowIsGreen) {
  // A small always-on differential window; the full sweep runs as
  // `msqlcheck --seeds=200 --smoke` in CI.
  HarnessOptions options;
  options.generator.max_rows = 16;
  options.generator.num_queries = 2;
  RunSummary summary = RunSeeds(0, 10, options, nullptr);
  EXPECT_EQ(summary.seeds_run, 10);
  for (const SeedReport& f : summary.failures) {
    ADD_FAILURE() << "seed " << f.seed << " failed:\n" << f.repro_sql;
  }
}

TEST(HarnessTest, ReplayScriptRunsACorpusStyleCase) {
  auto outcome = ReplayScript(
      "-- msqlcheck case seed=7\n"
      "CREATE TABLE t0 (d0 VARCHAR, v0 INTEGER);\n"
      "INSERT INTO t0 VALUES ('A', 1), ('A', 2), (NULL, 3);\n"
      "CREATE VIEW V0 AS SELECT *, SUM(v0) AS MEASURE m0 FROM t0;\n"
      "-- check: differential (grouped)\n"
      "SELECT d0, m0 FROM V0 GROUP BY d0;\n"
      "-- check: equal (visible pair)\n"
      "SELECT AGGREGATE(m0) AS x FROM V0 GROUP BY d0;\n"
      "SELECT m0 AT (VISIBLE) AS x FROM V0 GROUP BY d0;\n",
      OracleOptions{});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome.value().ok());
  EXPECT_EQ(outcome.value().queries_run, 3);
}

}  // namespace
}  // namespace testing
}  // namespace msql

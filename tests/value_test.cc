// Unit tests for the dynamically typed Value, date math and formatting.

#include "common/value.h"

#include "common/date.h"
#include "common/string_util.h"
#include "gtest/gtest.h"

namespace msql {
namespace {

TEST(ValueTest, NullBasics) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "NULL");
  EXPECT_TRUE(Value::NotDistinct(Value::Null(), Value::Null()));
  EXPECT_FALSE(Value::NotDistinct(Value::Null(), Value::Int(0)));
  EXPECT_TRUE(Value::SqlEquals(Value::Null(), Value::Int(1)).is_null());
}

TEST(ValueTest, Constructors) {
  EXPECT_EQ(Value::Int(42).int_val(), 42);
  EXPECT_EQ(Value::Bool(true).bool_val(), true);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_val(), 2.5);
  EXPECT_EQ(Value::String("hi").str(), "hi");
  EXPECT_EQ(Value::Date(0).ToString(), "1970-01-01");
}

TEST(ValueTest, CrossTypeNumericEquality) {
  EXPECT_TRUE(Value::NotDistinct(Value::Int(2), Value::Double(2.0)));
  EXPECT_FALSE(Value::NotDistinct(Value::Int(2), Value::Double(2.5)));
  // Hash must be consistent with NotDistinct.
  EXPECT_EQ(Value::Int(2).Hash(), Value::Double(2.0).Hash());
}

TEST(ValueTest, Compare) {
  EXPECT_LT(Value::Compare(Value::Int(1), Value::Int(2)), 0);
  EXPECT_GT(Value::Compare(Value::String("b"), Value::String("a")), 0);
  EXPECT_EQ(Value::Compare(Value::Null(), Value::Null()), 0);
  EXPECT_LT(Value::Compare(Value::Null(), Value::Int(-100)), 0);  // NULL first
  EXPECT_LT(Value::Compare(Value::Int(1), Value::Double(1.5)), 0);
  EXPECT_LT(Value::Compare(Value::Date(10), Value::Date(11)), 0);
}

TEST(ValueTest, CastToInt) {
  EXPECT_EQ(Value::String("123").CastTo(TypeKind::kInt64).value().int_val(),
            123);
  EXPECT_EQ(Value::Double(3.9).CastTo(TypeKind::kInt64).value().int_val(), 3);
  EXPECT_EQ(Value::Bool(true).CastTo(TypeKind::kInt64).value().int_val(), 1);
  EXPECT_FALSE(Value::String("12x").CastTo(TypeKind::kInt64).ok());
  EXPECT_TRUE(Value::Null().CastTo(TypeKind::kInt64).value().is_null());
}

TEST(ValueTest, CastToDouble) {
  EXPECT_DOUBLE_EQ(
      Value::String("2.5").CastTo(TypeKind::kDouble).value().double_val(),
      2.5);
  EXPECT_FALSE(Value::String("").CastTo(TypeKind::kDouble).ok());
}

TEST(ValueTest, CastToString) {
  EXPECT_EQ(Value::Int(7).CastTo(TypeKind::kString).value().str(), "7");
  EXPECT_EQ(Value::Date(0).CastTo(TypeKind::kString).value().str(),
            "1970-01-01");
}

TEST(ValueTest, CastToDate) {
  Value d = Value::String("2023-11-28").CastTo(TypeKind::kDate).value();
  EXPECT_EQ(d.kind(), TypeKind::kDate);
  EXPECT_EQ(YearOfDate(d.date_days()), 2023);
  EXPECT_FALSE(Value::String("2023-02-30").CastTo(TypeKind::kDate).ok());
}

TEST(ValueTest, CastToBool) {
  EXPECT_TRUE(Value::String("TRUE").CastTo(TypeKind::kBool).value().bool_val());
  EXPECT_FALSE(
      Value::String("false").CastTo(TypeKind::kBool).value().bool_val());
  EXPECT_FALSE(Value::String("yep").CastTo(TypeKind::kBool).ok());
}

TEST(ValueTest, SqlLiteralRendering) {
  EXPECT_EQ(Value::String("O'Brien").ToSqlLiteral(), "'O''Brien'");
  EXPECT_EQ(Value::Date(0).ToSqlLiteral(), "DATE '1970-01-01'");
  EXPECT_EQ(Value::Int(-3).ToSqlLiteral(), "-3");
}

TEST(ValueTest, RowHelpers) {
  Row a = {Value::Int(1), Value::String("x"), Value::Null()};
  Row b = {Value::Int(1), Value::String("x"), Value::Null()};
  Row c = {Value::Int(1), Value::String("y"), Value::Null()};
  EXPECT_TRUE(RowsNotDistinct(a, b));
  EXPECT_FALSE(RowsNotDistinct(a, c));
  EXPECT_EQ(HashRow(a, 3), HashRow(b, 3));
  EXPECT_EQ(HashRow(a, 1), HashRow(c, 1));  // prefix equal
}

TEST(DateTest, CivilRoundTrip) {
  for (int64_t days : {-719162L, -1L, 0L, 1L, 19689L, 2932896L}) {
    int64_t y;
    unsigned m, d;
    CivilFromDays(days, &y, &m, &d);
    EXPECT_EQ(DaysFromCivil(y, m, d), days);
  }
}

TEST(DateTest, KnownDates) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  EXPECT_EQ(DaysFromCivil(2023, 11, 28), 19689);
  EXPECT_EQ(FormatDate(19689), "2023-11-28");
  EXPECT_EQ(YearOfDate(19689), 2023);
  EXPECT_EQ(MonthOfDate(19689), 11);
  EXPECT_EQ(DayOfDate(19689), 28);
  EXPECT_EQ(QuarterOfDate(19689), 4);
  // 2023-11-28 was a Tuesday: SQL DAYOFWEEK (1 = Sunday) gives 3.
  EXPECT_EQ(DayOfWeek(19689), 3);
  EXPECT_EQ(DayOfWeek(0), 5);  // 1970-01-01 was a Thursday
}

TEST(DateTest, ParseVariants) {
  EXPECT_EQ(ParseDate("2023-11-28").value(), 19689);
  EXPECT_EQ(ParseDate("2023/11/28").value(), 19689);
  EXPECT_FALSE(ParseDate("2023-11/28").ok());  // mixed separators
  EXPECT_FALSE(ParseDate("2023-13-01").ok());
  EXPECT_FALSE(ParseDate("2023-00-10").ok());
  EXPECT_FALSE(ParseDate("abc").ok());
  EXPECT_FALSE(ParseDate("2023-11-28x").ok());
}

TEST(DateTest, LeapYears) {
  EXPECT_TRUE(ParseDate("2024-02-29").ok());
  EXPECT_FALSE(ParseDate("2023-02-29").ok());
  EXPECT_TRUE(ParseDate("2000-02-29").ok());
  EXPECT_FALSE(ParseDate("1900-02-29").ok());
}

TEST(StringUtilTest, Basics) {
  EXPECT_EQ(ToUpper("aBc"), "ABC");
  EXPECT_EQ(ToLower("aBc"), "abc");
  EXPECT_TRUE(EqualsIgnoreCase("Hello", "hELLO"));
  EXPECT_FALSE(EqualsIgnoreCase("Hello", "Hello!"));
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Split("a,,b", ',').size(), 3u);
  EXPECT_EQ(StrCat("x=", 4, "!"), "x=4!");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(2.0), "2.0");
  EXPECT_EQ(FormatDouble(0.5), "0.5");
  EXPECT_EQ(FormatDouble(1.0 / 3.0).substr(0, 6), "0.3333");
  EXPECT_EQ(FormatDouble(-7.0), "-7.0");
}

TEST(StringUtilTest, QuoteSqlString) {
  EXPECT_EQ(QuoteSqlString("it's"), "'it''s'");
  EXPECT_EQ(QuoteSqlString(""), "''");
}

TEST(StatusTest, MacroPropagation) {
  auto fails = []() -> Result<int> {
    return Status(ErrorCode::kParse, "boom");
  };
  auto wrapper = [&]() -> Result<int> {
    MSQL_ASSIGN_OR_RETURN(int v, fails());
    return v + 1;
  };
  auto r = wrapper();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kParse);
  EXPECT_EQ(r.status().ToString(), "parse error: boom");
}

TEST(TypesTest, CommonType) {
  EXPECT_EQ(CommonType(DataType::Int64(), DataType::Double()).kind,
            TypeKind::kDouble);
  EXPECT_EQ(CommonType(DataType::Null(), DataType::String()).kind,
            TypeKind::kString);
  EXPECT_EQ(CommonType(DataType::Date(), DataType::String()).kind,
            TypeKind::kNull);  // incompatible
}

TEST(TypesTest, MeasureWrapper) {
  DataType t = DataType::Double().AsMeasure();
  EXPECT_TRUE(t.is_measure);
  EXPECT_EQ(t.ToString(), "DOUBLE MEASURE");
  EXPECT_FALSE(t.ValueType().is_measure);
  EXPECT_EQ(TypeKindFromName("bigint"), TypeKind::kInt64);
  EXPECT_EQ(TypeKindFromName("nope"), TypeKind::kNull);
}

}  // namespace
}  // namespace msql

// Tests for paper section 5.3 (wide tables) and section 6.3 (grain
// management): semi-additive measures (inventory rolled up with MAX_BY over
// time and SUM over other dimensions), non-additive ratio measures, and
// per-level formulas via GROUPING.

#include "engine/engine.h"
#include "gtest/gtest.h"
#include "tests/paper_fixture.h"

namespace msql {
namespace {

class WideTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // An inventory fact table: items on hand per warehouse per day.
    MustExecute(&db_, R"sql(
      CREATE TABLE Inventory (warehouse VARCHAR, product VARCHAR,
                              day DATE, onHand INTEGER);
      INSERT INTO Inventory VALUES
        ('W1', 'pen',  DATE '2024-01-01', 100),
        ('W1', 'pen',  DATE '2024-01-02', 80),
        ('W1', 'book', DATE '2024-01-01', 50),
        ('W1', 'book', DATE '2024-01-02', 70),
        ('W2', 'pen',  DATE '2024-01-01', 10),
        ('W2', 'pen',  DATE '2024-01-03', 30);
      CREATE TABLE Returns (product VARCHAR, sold INTEGER, returned INTEGER);
      INSERT INTO Returns VALUES
        ('pen', 200, 10), ('book', 100, 30);
    )sql");
  }
  Engine db_;
};

// Semi-additive measure: per (warehouse, product) take the LAST value over
// time (MAX_BY on day), which then sums across warehouses/products.
TEST_F(WideTableTest, SemiAdditiveInventory) {
  MustExecute(&db_, R"sql(
    CREATE VIEW Stock AS
    SELECT *, MAX_BY(onHand, day) AS MEASURE lastOnHand
    FROM Inventory
  )sql");
  // Per warehouse+product: latest snapshot.
  ResultSet leaf = MustQuery(&db_, R"sql(
    SELECT warehouse, product, AGGREGATE(lastOnHand) AS stock
    FROM Stock GROUP BY warehouse, product
    ORDER BY warehouse, product
  )sql");
  ASSERT_EQ(leaf.num_rows(), 3u);
  EXPECT_EQ(leaf.Get(0, "stock").int_val(), 70);  // W1 book (Jan 2)
  EXPECT_EQ(leaf.Get(1, "stock").int_val(), 80);  // W1 pen (Jan 2)
  EXPECT_EQ(leaf.Get(2, "stock").int_val(), 30);  // W2 pen (Jan 3)

  // Summing the per-leaf snapshots across warehouses needs an explicit
  // second aggregation step (the PER-clause pattern of section 6.3).
  ResultSet total = MustQuery(&db_, R"sql(
    SELECT product, SUM(stock) AS total FROM (
      SELECT warehouse, product, AGGREGATE(lastOnHand) AS stock
      FROM Stock GROUP BY warehouse, product
    ) AS leaves
    GROUP BY product ORDER BY product
  )sql");
  ASSERT_EQ(total.num_rows(), 2u);
  EXPECT_EQ(total.Get(0, "total").int_val(), 70);    // book
  EXPECT_EQ(total.Get(1, "total").int_val(), 110);   // pen: 80 + 30
}

// Non-additive measure: return rate is a ratio of sums, never a sum of
// ratios.
TEST_F(WideTableTest, NonAdditiveReturnRate) {
  MustExecute(&db_, R"sql(
    CREATE VIEW R AS
    SELECT *, SUM(returned) * 1.0 / SUM(sold) AS MEASURE returnRate
    FROM Returns
  )sql");
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT product, AGGREGATE(returnRate) AS rate,
           returnRate AT (ALL) AS overall
    FROM R GROUP BY product ORDER BY product
  )sql");
  EXPECT_NEAR(rs.Get(0, "rate").double_val(), 0.30, 1e-9);  // book
  EXPECT_NEAR(rs.Get(1, "rate").double_val(), 0.05, 1e-9);  // pen
  // Overall rate is 40/300, NOT the average of the two rates.
  for (const Row& row : rs.rows()) {
    EXPECT_NEAR(row[2].double_val(), 40.0 / 300, 1e-9);
  }
}

// Per-level formulas: GROUPING distinguishes the subtotal level, enabling a
// different formula at each level (section 5.3's custom measures).
TEST_F(WideTableTest, PerLevelFormulaViaGrouping) {
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT warehouse,
           CASE WHEN GROUPING(warehouse) = 1
                THEN AVG(onHand) ELSE SUM(onHand) * 1.0 END AS metric
    FROM Inventory
    GROUP BY ROLLUP(warehouse)
  )sql");
  ASSERT_EQ(rs.num_rows(), 3u);
  for (const Row& row : rs.rows()) {
    if (row[0].is_null()) {
      EXPECT_NEAR(row[1].double_val(), 340.0 / 6, 1e-9);  // grand: AVG
    } else if (row[0].str() == "W1") {
      EXPECT_NEAR(row[1].double_val(), 300.0, 1e-9);      // leaf: SUM
    }
  }
}

// A wide view joining facts to a dimension table exposes measures that
// remain correct regardless of denormalization (section 5.3's thesis).
TEST_F(WideTableTest, WideViewAvoidsDoubleCounting) {
  MustExecute(&db_, R"sql(
    CREATE TABLE Products (product VARCHAR, category VARCHAR);
    INSERT INTO Products VALUES ('pen', 'stationery'), ('book', 'media');
    CREATE VIEW FactReturns AS
      SELECT *, SUM(sold) AS MEASURE totalSold FROM Returns;
    CREATE VIEW Wide AS
      SELECT f.product, f.sold, f.returned, f.totalSold, p.category
      FROM FactReturns AS f JOIN Products AS p ON f.product = p.product;
  )sql");
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT category, AGGREGATE(totalSold) AS sold
    FROM Wide GROUP BY category ORDER BY category
  )sql");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.Get(0, "sold").int_val(), 100);  // media/book
  EXPECT_EQ(rs.Get(1, "sold").int_val(), 200);  // stationery/pen
}

// A measure can roll up with MIN/MAX semantics too.
TEST_F(WideTableTest, MinMaxMeasures) {
  MustExecute(&db_, R"sql(
    CREATE VIEW S AS SELECT *, MIN(onHand) AS MEASURE lo,
                            MAX(onHand) AS MEASURE hi
    FROM Inventory
  )sql");
  ResultSet rs = MustQuery(&db_, R"sql(
    SELECT warehouse, AGGREGATE(lo) AS lo, AGGREGATE(hi) AS hi
    FROM S GROUP BY warehouse ORDER BY warehouse
  )sql");
  EXPECT_EQ(rs.Get(0, "lo").int_val(), 50);
  EXPECT_EQ(rs.Get(0, "hi").int_val(), 100);
  EXPECT_EQ(rs.Get(1, "lo").int_val(), 10);
  EXPECT_EQ(rs.Get(1, "hi").int_val(), 30);
}

}  // namespace
}  // namespace msql

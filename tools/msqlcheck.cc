// msqlcheck — differential & metamorphic testing driver for the measure
// engine (docs/TESTING.md).
//
// Modes:
//   msqlcheck --seeds=N [--start=S]   run N generated seeds through the
//                                     four-way oracle; shrink + dump a
//                                     repro for every failing seed
//   msqlcheck --replay=FILE           replay a corpus / repro .sql script
//   msqlcheck --dump-seed=S           print the generated script for a seed
//
// Common flags:
//   --smoke            CI preset: smaller cases, tighter shrink budget
//   --repro-dir=DIR    where failing repros are written (default: repros)
//   --workers=N        parallelism of the grouped-parallel leg (default 4)
//   --no-expansion     skip the ExpandMeasures plain-SQL leg
//   --no-shrink        report failures without minimizing them
//   --no-metamorphic   generate differential checks only
//   --max-rows=N / --queries=N / --shrink-budget=N
//
// Exit status: 0 all checks passed, 1 discrepancies found, 2 usage error.
// Output is deterministic for a fixed command line.

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "testing/harness.h"

namespace {

using msql::testing::CaseOutcome;
using msql::testing::HarnessOptions;

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

bool ParseIntFlag(const std::string& arg, const std::string& name,
                  int64_t* value) {
  std::string text;
  if (!ParseFlag(arg, name, &text)) return false;
  *value = std::strtoll(text.c_str(), nullptr, 10);
  return true;
}

int Usage() {
  std::cerr << "usage: msqlcheck --seeds=N [--start=S] [--smoke]\n"
            << "       msqlcheck --replay=FILE\n"
            << "       msqlcheck --dump-seed=S\n"
            << "see the header of tools/msqlcheck.cc for all flags\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t seeds = -1;
  int64_t start = 1;
  int64_t dump_seed = -1;
  std::string replay_path;
  bool smoke = false;

  HarnessOptions options;
  options.repro_dir = "repros";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    int64_t n = 0;
    std::string s;
    if (ParseIntFlag(arg, "seeds", &seeds) ||
        ParseIntFlag(arg, "start", &start) ||
        ParseIntFlag(arg, "dump-seed", &dump_seed) ||
        ParseFlag(arg, "replay", &replay_path)) {
      continue;
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--no-expansion") {
      options.oracle.include_expansion = false;
    } else if (arg == "--no-shrink") {
      options.shrink_failures = false;
    } else if (arg == "--no-metamorphic") {
      options.generator.metamorphic = false;
    } else if (ParseIntFlag(arg, "workers", &n)) {
      options.oracle.measure_workers = static_cast<int>(n);
    } else if (ParseIntFlag(arg, "max-rows", &n)) {
      options.generator.max_rows = static_cast<int>(n);
    } else if (ParseIntFlag(arg, "queries", &n)) {
      options.generator.num_queries = static_cast<int>(n);
    } else if (ParseIntFlag(arg, "shrink-budget", &n)) {
      options.shrink_budget = static_cast<int>(n);
    } else if (ParseFlag(arg, "repro-dir", &s)) {
      options.repro_dir = s;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return Usage();
    }
  }

  if (smoke) {
    // CI preset: small enough that --seeds=200 stays well under a minute.
    options.generator.max_rows = 24;
    options.generator.num_queries = 3;
    options.shrink_budget = 150;
  }

  if (dump_seed >= 0) {
    std::cout << msql::testing::GenerateCase(
                     static_cast<uint64_t>(dump_seed), options.generator)
                     .ToSql();
    return 0;
  }

  if (!replay_path.empty()) {
    auto outcome = msql::testing::ReplayScriptFile(replay_path, options.oracle);
    if (!outcome.ok()) {
      std::cerr << "replay error: " << outcome.status().ToString() << "\n";
      return 2;
    }
    const CaseOutcome& o = outcome.value();
    for (const auto& f : o.failures) {
      std::cout << "FAIL [" << f.label << "] " << f.detail << "\n";
    }
    std::cout << replay_path << ": " << o.queries_run << " queries, "
              << o.expansion_skips << " expansion skips, "
              << o.failures.size() << " failures\n";
    return o.ok() ? 0 : 1;
  }

  if (seeds < 0) return Usage();

  auto summary = msql::testing::RunSeeds(static_cast<uint64_t>(start),
                                         static_cast<int>(seeds), options,
                                         &std::cout);
  std::cout << "msqlcheck: " << summary.seeds_run << " seeds, "
            << summary.queries_run << " queries, " << summary.expansion_skips
            << " expansion skips, " << summary.seeds_failed << " failed\n";
  return summary.ok() ? 0 : 1;
}

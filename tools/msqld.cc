// msqld: the msql network server (docs/NETWORKING.md). Hosts one Engine
// behind the length-prefixed wire protocol of src/net/wire.h and serves
// concurrent clients (msql_shell --connect, net::Client).
//
//   msqld [--host H] [--port P] [--admin-port P] [--handlers N] [--workers N]
//         [--rate-limit-qps Q] [--rate-limit-burst B]
//         [--max-connections N] [--max-connections-per-user N]
//         [--default-timeout-ms MS] [--no-plan-cache]
//         [--no-system-tables] [--init FILE ...]
//
// --port 0 (the default) binds an ephemeral port; the chosen port is
// printed as "msqld listening on HOST:PORT" so scripts can scrape it.
// --admin-port opens the HTTP admin plane (/metrics, /healthz, /statusz,
// /tracez — docs/OBSERVABILITY.md); it is off unless the flag is given,
// and 0 binds an ephemeral admin port, printed the same way. msqld exposes
// the msql_system.* introspection tables by default; --no-system-tables
// hides them.
// --init files run through Engine::Execute before the listener opens, so
// clients never observe a half-loaded catalog. SIGINT/SIGTERM shut down
// gracefully: in-flight statements are cancelled, connections closed.

#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "net/server.h"

namespace {

std::atomic<bool> g_shutdown{false};

void HandleSignal(int) { g_shutdown.store(true); }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port P] [--admin-port P]\n"
               "          [--handlers N] [--workers N]\n"
               "          [--rate-limit-qps Q] [--rate-limit-burst B]\n"
               "          [--max-connections N] [--max-connections-per-user N]\n"
               "          [--default-timeout-ms MS] [--no-plan-cache]\n"
               "          [--no-system-tables] [--init FILE ...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  msql::EngineOptions engine_options;
  engine_options.enable_plan_cache = true;
  engine_options.enable_system_tables = true;
  msql::net::ServerOptions server_options;
  server_options.num_handler_threads = 4;
  server_options.num_worker_threads = 8;
  std::vector<std::string> init_files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--host") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      server_options.host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      server_options.port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--admin-port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      server_options.admin_port = std::atoi(v);
    } else if (arg == "--handlers") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      server_options.num_handler_threads = std::atoi(v);
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      server_options.num_worker_threads = std::atoi(v);
    } else if (arg == "--rate-limit-qps") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      server_options.per_user_rate_limit_qps = std::atof(v);
    } else if (arg == "--rate-limit-burst") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      server_options.per_user_rate_limit_burst = std::atoll(v);
    } else if (arg == "--max-connections") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      server_options.max_connections = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--max-connections-per-user") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      server_options.max_connections_per_user = std::atoi(v);
    } else if (arg == "--default-timeout-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      server_options.default_timeout_ms = std::atoll(v);
    } else if (arg == "--no-plan-cache") {
      engine_options.enable_plan_cache = false;
    } else if (arg == "--no-system-tables") {
      engine_options.enable_system_tables = false;
    } else if (arg == "--init") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      init_files.push_back(v);
    } else {
      return Usage(argv[0]);
    }
  }

  msql::Engine engine(engine_options);
  for (const std::string& file : init_files) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "msqld: cannot open %s\n", file.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    msql::Status st = engine.Execute(buffer.str());
    if (!st.ok()) {
      std::fprintf(stderr, "msqld: %s: %s\n", file.c_str(),
                   st.ToString().c_str());
      return 1;
    }
  }

  msql::net::MsqldServer server(&engine, server_options);
  msql::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "msqld: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("msqld listening on %s:%u\n", server_options.host.c_str(),
              server.port());
  if (server_options.admin_port >= 0) {
    std::printf("msqld admin on http://%s:%u\n", server_options.host.c_str(),
                server.admin_port());
  }
  std::fflush(stdout);

  signal(SIGINT, HandleSignal);
  signal(SIGTERM, HandleSignal);
  while (!g_shutdown.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "msqld: shutting down (%d connection%s open)\n",
               server.active_connections(),
               server.active_connections() == 1 ? "" : "s");
  server.Stop();
  return 0;
}
